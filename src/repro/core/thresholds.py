"""Threshold selection (section 6.3): choosing ``dL`` and ``s``.

Given a desired expected outdegree ``d̂`` (application-driven) and a
maximum duplication/deletion probability ``δ``, the paper sets, using the
no-loss analytical distribution of equation 6.1 with ``dm = 3·d̂``
(Lemma 6.3):

    dL = max { d' even ≤ d̂ : Pr(d(u) ≤ d') ≤ δ }
    s  = min { d' even ≥ d̂ : Pr(d(u) > d') ≤ δ }

The worked example in the paper: ``d̂ = 30, δ = 0.01 → dL = 18, s = 40``.
Note the upper rule uses the *strict* tail ``Pr(d > d')``: with
``Pr(d ≥ 40) ≈ 0.025`` but ``Pr(d > 40) ≈ 0.0086``, only the strict
reading reproduces the paper's ``s = 40`` (the weak reading would give 42).
Deletions occur when a message arrives while the receiver already sits at
``d = s``, i.e. when the degree would exceed ``s``, which matches the
strict tail.  Typically ``δ = 0.01`` balances low dependence creation
under no loss against the ability to repair degree imbalance under loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.degree_analytic import analytical_outdegree_distribution
from repro.core.params import SFParams


@dataclass(frozen=True)
class ThresholdSelection:
    """The outcome of the section 6.3 rule.

    Attributes:
        d_hat: the requested expected outdegree.
        delta: the requested duplication/deletion probability cap.
        d_low: the selected lower threshold ``dL``.
        view_size: the selected view size ``s``.
        low_tail: achieved ``Pr(d(u) ≤ dL)`` (duplication probability bound).
        high_tail: achieved ``Pr(d(u) ≥ s)`` (deletion probability bound).
    """

    d_hat: int
    delta: float
    d_low: int
    view_size: int
    low_tail: float
    high_tail: float

    def params(self) -> SFParams:
        """The selected thresholds as validated protocol parameters."""
        return SFParams(view_size=self.view_size, d_low=self.d_low)


def select_thresholds(d_hat: int, delta: float) -> ThresholdSelection:
    """Apply the section 6.3 rule; see module docstring.

    Args:
        d_hat: desired expected outdegree without loss (must be even, ≥ 2).
        delta: cap on duplication and deletion probabilities, in (0, 1/2).

    Returns:
        The selected ``(dL, s)`` with the achieved tail probabilities.

    Raises:
        ValueError: for invalid inputs or if no even threshold satisfies
            the tail conditions.
    """
    if d_hat < 2 or d_hat % 2 != 0:
        raise ValueError(f"d_hat must be an even integer >= 2, got {d_hat}")
    if not 0.0 < delta < 0.5:
        raise ValueError(f"delta must be in (0, 1/2), got {delta}")

    dm = 3 * d_hat
    pmf: Dict[int, float] = analytical_outdegree_distribution(dm)
    degrees = sorted(pmf)

    d_low = None
    cumulative = 0.0
    for d in degrees:
        if d > d_hat:
            break
        cumulative += pmf[d]
        if cumulative <= delta:
            d_low = d
    if d_low is None:
        # Even Pr(d ≤ 0) exceeds δ; the only safe lower threshold is 0 when
        # its tail qualifies, otherwise the request is unsatisfiable.
        raise ValueError(
            f"no even d' <= d_hat={d_hat} has lower tail <= delta={delta}"
        )

    view_size = None
    tail = 0.0  # running Pr(d > d') as d' sweeps downward
    achieved_high = 0.0
    for d in reversed(degrees):
        if d < d_hat:
            break
        if tail <= delta:
            view_size = d
            achieved_high = tail
        tail += pmf[d]
    if view_size is None:
        raise ValueError(
            f"no even d' >= d_hat={d_hat} has upper tail <= delta={delta}"
        )

    low_tail = sum(pmf[d] for d in degrees if d <= d_low)
    return ThresholdSelection(
        d_hat=d_hat,
        delta=delta,
        d_low=d_low,
        view_size=view_size,
        low_tail=low_tail,
        high_tail=achieved_high,
    )
