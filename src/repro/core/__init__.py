"""The paper's primary contribution: the Send & Forget (S&F) protocol.

``SendForget`` implements Figure 5.1 exactly — nonatomic actions made of a
send step and a receive step, duplication when the sender's outdegree is at
the lower threshold ``dL``, and deletion when the receiver's view is full.
``SFParams`` carries the two protocol parameters, and ``select_thresholds``
implements the section 6.3 rule for choosing them.
"""

from repro.core.params import SFParams
from repro.core.sandf import SendForget
from repro.core.thresholds import ThresholdSelection, select_thresholds
from repro.core.view import View, ViewEntry

__all__ = [
    "SFParams",
    "SendForget",
    "View",
    "ViewEntry",
    "ThresholdSelection",
    "select_thresholds",
]
