"""Conductance computations (Definitions 7.11–7.13).

For a finite MC with transition matrix ``P`` and stationary π:

* ``Q(x, y) = π(x)·P(x, y)``; the boundary size of ``S`` is
  ``|∂S| = Q(S, Sᶜ)``;
* the conductance of ``S`` is ``φ(S) = |∂S| / π(S)``;
* the graph conductance is ``min φ(S)`` over ``π(S) ≤ 1/2`` — exponential
  to compute exactly, so :func:`conductance` only sweeps the provided or
  generated candidate family;
* the paper's *expected conductance* ``Φ(G)`` (Definition 7.13) averages,
  over a π-random start ``X``, the minimum conductance among the neighbor
  sets ``Γ_i(X)`` with ``π(Γ_i(X)) ≤ 1/2`` — computable exactly for small
  chains and estimable by sampling.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.markov.chain import MarkovChain
from repro.util.rng import SeedLike, make_rng


def boundary_size(chain: MarkovChain, subset: Iterable[int]) -> float:
    """``|∂S| = Σ_{x∈S, y∉S} π(x)·P(x, y)`` (Definition 7.11)."""
    members = set(subset)
    _check_subset(chain, members)
    pi = chain.stationary_distribution()
    total = 0.0
    for x in members:
        row = chain.P[x]
        outside = sum(row[y] for y in range(chain.n) if y not in members)
        total += pi[x] * outside
    return total


def conductance_of_set(chain: MarkovChain, subset: Iterable[int]) -> float:
    """``φ(S) = |∂S| / π(S)`` (Definition 7.12)."""
    members = set(subset)
    _check_subset(chain, members)
    pi = chain.stationary_distribution()
    mass = sum(pi[x] for x in members)
    if mass <= 0.0:
        raise ValueError("subset has zero stationary mass")
    return boundary_size(chain, members) / mass


def conductance(
    chain: MarkovChain,
    candidate_sets: Optional[Sequence[Iterable[int]]] = None,
) -> float:
    """``min φ(S)`` over candidate sets with ``π(S) ≤ 1/2``.

    Without explicit candidates, sweeps the classic family: prefixes of
    states ordered by stationary mass, plus all singletons — a standard
    upper-bounding family (the true conductance minimizes over *all*
    subsets, which is intractable beyond ~20 states).
    """
    pi = chain.stationary_distribution()
    if candidate_sets is None:
        order = list(np.argsort(-pi))
        candidate_sets = [order[: i + 1] for i in range(chain.n - 1)]
        candidate_sets += [[x] for x in range(chain.n)]
    best = np.inf
    for candidate in candidate_sets:
        members = set(candidate)
        if not members or len(members) == chain.n:
            continue
        mass = sum(pi[x] for x in members)
        if mass <= 0.0 or mass > 0.5 + 1e-12:
            continue
        best = min(best, boundary_size(chain, members) / mass)
    if not np.isfinite(best):
        raise ValueError("no candidate set had stationary mass in (0, 1/2]")
    return float(best)


def neighbor_sets(chain: MarkovChain, start: int, tolerance: float = 1e-12) -> List[Set[int]]:
    """The nested ``Γ_i(start)`` (Definition 7.10) until they stop growing."""
    current: Set[int] = {start}
    layers = [set(current)]
    while True:
        frontier: Set[int] = set()
        for x in current:
            frontier.update(np.nonzero(chain.P[x] > tolerance)[0].tolist())
        nxt = current | frontier
        if nxt == current:
            return layers
        current = nxt
        layers.append(set(current))


def expected_conductance(
    chain: MarkovChain,
    samples: Optional[int] = None,
    seed: SeedLike = None,
) -> float:
    """The paper's ``Φ(G)`` (Definition 7.13).

    With ``samples=None`` computes the exact expectation over all start
    states weighted by π; otherwise estimates from π-distributed samples.
    """
    pi = chain.stationary_distribution()
    rng = make_rng(seed)
    if samples is None:
        starts = list(range(chain.n))
        weights = pi
    else:
        if samples <= 0:
            raise ValueError(f"samples must be positive, got {samples}")
        starts = [int(rng.choice(chain.n, p=pi)) for _ in range(samples)]
        weights = np.full(len(starts), 1.0 / len(starts))
    total = 0.0
    for weight, start in zip(weights, starts):
        if weight <= 0.0:
            continue
        best = np.inf
        for layer in neighbor_sets(chain, start):
            mass = sum(pi[x] for x in layer)
            if mass > 0.5 + 1e-12 or len(layer) == chain.n:
                break
            if mass > 0.0:
                best = min(best, boundary_size(chain, layer) / mass)
        if np.isfinite(best):
            total += weight * best
    return float(total)


def _check_subset(chain: MarkovChain, members: Set[int]) -> None:
    if not members:
        raise ValueError("subset must be nonempty")
    if len(members) >= chain.n:
        raise ValueError("subset must be a proper subset of the state space")
    for x in members:
        if not 0 <= x < chain.n:
            raise ValueError(f"state {x} out of range")
