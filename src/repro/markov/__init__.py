"""Markov-chain machinery for the paper's analyses.

* :mod:`repro.markov.chain` — generic finite MCs (section 3.2 toolkit).
* :mod:`repro.markov.degree_mc` — the two-dimensional degree MC of §6.2,
  solved by the paper's iterative fixed-point scheme.
* :mod:`repro.markov.dependence_mc` — the two-state dependence MC of §7.4.
* :mod:`repro.markov.global_mc` — exhaustive enumeration of the global MC
  over membership graphs for tiny systems, used to check Lemmas 7.3–7.5.
* :mod:`repro.markov.conductance` — boundary/conductance computations
  (Definitions 7.11–7.13).
"""

from repro.markov.chain import MarkovChain
from repro.markov.degree_mc import DegreeMarkovChain, DegreeMCResult
from repro.markov.dependence_mc import DependenceMarkovChain
from repro.markov.global_mc import GlobalMarkovChain
from repro.markov.conductance import conductance, expected_conductance
from repro.markov.mixing import (
    epsilon_independence_time,
    mixing_time,
    relaxation_time,
    spectral_gap,
    tv_decay_curve,
)

__all__ = [
    "MarkovChain",
    "DegreeMarkovChain",
    "DegreeMCResult",
    "DependenceMarkovChain",
    "GlobalMarkovChain",
    "conductance",
    "expected_conductance",
    "mixing_time",
    "epsilon_independence_time",
    "tv_decay_curve",
    "spectral_gap",
    "relaxation_time",
]
