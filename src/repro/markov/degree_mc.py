"""The two-dimensional degree Markov chain (section 6.2, Figures 6.1–6.3).

The chain tracks the joint evolution of a single tagged node's
``(outdegree d, indegree k)`` under S&F in a large system (``n ≫ s`` — the
construction is independent of ``n``).  Three event families change the
tagged state, with per-round rates (one round = each node initiates once):

* **initiate** (rate 1): the tagged node selects two slots; with
  probability ``q = d(d−1)/(s(s−1))`` both are nonempty.  Unless its
  outdegree sits at ``dL`` (duplication) it drops to ``d−2``; if the
  message is delivered (prob ``1−ℓ``) to a non-full receiver (prob
  ``1−P_full``), the receiver stores the tagged id: ``k+1``.
* **targeted** (rate ``k·r``): a holder of the tagged id picks that
  instance as the message *target*.  The holder clears the instance
  (``k−1``) unless it duplicates (prob ``p_dup``); the tagged node, if the
  message arrives (``1−ℓ``) and it has room (``d < s``), stores two ids:
  ``d+2`` — otherwise it deletes them.
* **forwarded** (rate ``k·r``): a holder picks the instance as the
  *payload*.  The instance moves: removed at the holder unless duplicated,
  recreated at the message target if delivered to a non-full node.

The environment parameters are distributional quantities of the chain's
own stationary distribution π, creating the circularity the paper resolves
iteratively ("we search the correct degree distributions iteratively"):

* ``r = E[D(D−1)] / (E[D]·s(s−1))`` — holders are sampled proportionally
  to outdegree (an id instance lives in a uniformly random nonempty slot),
  and target/payload selection is proportional to ``D−1``;
* ``p_dup = μ(dL)·dL·(dL−1) / E[D(D−1)]`` — the holder-duplication
  probability, size-biased exactly as Lemma 6.9 warns ("preferring nodes
  with higher outdegrees");
* ``P_full = E[k·1{d=s}] / E[k]`` — message targets are sampled
  proportionally to indegree, so receiver fullness is indegree-weighted.

Sum degrees are capped at ``3s`` exactly as in the paper ("we consider sum
degrees to be bounded by 3s ... replacing edges leading to these states
with self-loops").

With ``ℓ = 0`` and ``dL = 0`` the chain conserves the sum degree
``d + 2k`` (Lemma 6.2) and is not ergodic on the full grid; pass
``conserved_sum_degree=dm`` to restrict the state space to that line —
this reproduces the "S&F Markov" curves of Figure 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix, lil_matrix
from scipy.sparse.linalg import spsolve

from repro.core.params import SFParams

State = Tuple[int, int]  # (outdegree, indegree)


@dataclass
class DegreeMCResult:
    """Solved stationary behavior of the degree MC.

    Attributes:
        states: state list aligned with ``stationary``.
        stationary: π over states.
        outdegree_pmf / indegree_pmf: stationary marginals.
        p_full: indegree-weighted receiver-fullness probability.
        p_dup_holder: size-biased holder duplication probability.
        duplication_probability: Pr(duplication | non-self-loop action) of
            a random initiator — the δ-side quantity of Lemmas 6.6/6.7.
        deletion_probability: Pr(deletion | non-self-loop action), i.e.
            ``(1−ℓ)·P_full``.
        iterations: fixed-point iterations used.
    """

    states: List[State]
    stationary: np.ndarray
    outdegree_pmf: Dict[int, float]
    indegree_pmf: Dict[int, float]
    p_full: float
    p_dup_holder: float
    duplication_probability: float
    deletion_probability: float
    iterations: int

    def expected_outdegree(self) -> float:
        return sum(d * p for d, p in self.outdegree_pmf.items())

    def expected_indegree(self) -> float:
        return sum(k * p for k, p in self.indegree_pmf.items())

    def outdegree_mean_std(self) -> Tuple[float, float]:
        from repro.util.stats import distribution_mean_std

        return distribution_mean_std(self.outdegree_pmf)

    def indegree_mean_std(self) -> Tuple[float, float]:
        from repro.util.stats import distribution_mean_std

        return distribution_mean_std(self.indegree_pmf)


@dataclass
class _Environment:
    """The self-consistent field: rates the chain imposes on itself."""

    rate_per_instance: float
    p_dup_holder: float
    p_full: float

    def distance(self, other: "_Environment") -> float:
        return max(
            abs(self.rate_per_instance - other.rate_per_instance),
            abs(self.p_dup_holder - other.p_dup_holder),
            abs(self.p_full - other.p_full),
        )


class DegreeMarkovChain:
    """Builder/solver for the §6.2 degree MC.

    Args:
        params: protocol parameters ``(s, dL)``.
        loss_rate: the uniform loss probability ℓ.
        conserved_sum_degree: restrict states to the line ``d + 2k = dm``
            (requires ``ℓ = 0`` and ``dL = 0``; Lemma 6.2's invariant).
        sum_degree_cap: cap on ``d + 2k`` (default ``3s``, as in the paper).
    """

    def __init__(
        self,
        params: SFParams,
        loss_rate: float = 0.0,
        conserved_sum_degree: Optional[int] = None,
        sum_degree_cap: Optional[int] = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.params = params
        self.loss_rate = loss_rate
        s = params.view_size
        self.sum_degree_cap = sum_degree_cap if sum_degree_cap is not None else 3 * s
        if self.sum_degree_cap < params.d_low:
            raise ValueError("sum_degree_cap below d_low leaves no states")
        self.conserved_sum_degree = conserved_sum_degree
        if conserved_sum_degree is not None:
            if loss_rate != 0.0 or params.d_low != 0:
                raise ValueError(
                    "sum-degree conservation (Lemma 6.2) requires loss_rate=0 "
                    "and d_low=0"
                )
            if conserved_sum_degree % 2 != 0:
                raise ValueError("conserved sum degree must be even")
            if not 0 < conserved_sum_degree <= s:
                raise ValueError(
                    f"conserved sum degree must be in (0, s={s}], got "
                    f"{conserved_sum_degree}"
                )
        self.states = self._build_states()
        self._index = {state: i for i, state in enumerate(self.states)}

    # ------------------------------------------------------------------
    # State space
    # ------------------------------------------------------------------

    def _build_states(self) -> List[State]:
        s, d_low = self.params.view_size, self.params.d_low
        states: List[State] = []
        if self.conserved_sum_degree is not None:
            dm = self.conserved_sum_degree
            for d in range(0, min(s, dm) + 1, 2):
                k = (dm - d) // 2
                states.append((d, k))
            return states
        for d in range(d_low, s + 1, 2):
            max_k = (self.sum_degree_cap - d) // 2
            for k in range(0, max_k + 1):
                if d == 0 and k == 0:
                    continue  # the isolated state is unreachable (Fig 6.2)
                states.append((d, k))
        return states

    # ------------------------------------------------------------------
    # Transition construction
    # ------------------------------------------------------------------

    def _transitions(
        self, state: State, env: _Environment
    ) -> List[Tuple[State, float]]:
        """Non-self-loop transition rates (per round) out of ``state``."""
        s, d_low = self.params.view_size, self.params.d_low
        loss = self.loss_rate
        d, k = state
        pair_choice = s * (s - 1)
        q = d * (d - 1) / pair_choice
        deliver_space = (1.0 - loss) * (1.0 - env.p_full)
        moves: List[Tuple[State, float]] = []

        # Initiate (rate 1).
        if q > 0.0:
            d_after = d if d <= d_low else d - 2
            moves.append(((d_after, k + 1), q * deliver_space))
            if d_after != d:
                moves.append(((d_after, k), q * (1.0 - deliver_space)))
            # Duplication with a lost/deleted message changes nothing.

        if k > 0:
            rate_events = k * env.rate_per_instance
            p_dup = env.p_dup_holder

            # Targeted (tagged node is the message destination).
            gains_room = d < s
            arrive = 1.0 - loss
            if gains_room:
                moves.append(((d + 2, k - 1), rate_events * (1.0 - p_dup) * arrive))
                moves.append(((d, k - 1), rate_events * (1.0 - p_dup) * (1.0 - arrive)))
                moves.append(((d + 2, k), rate_events * p_dup * arrive))
            else:
                # Full view: arriving ids are deleted; only the holder-side
                # clearing matters.
                moves.append(((d, k - 1), rate_events * (1.0 - p_dup)))

            # Forwarded (tagged id is the payload).
            moved_ok = deliver_space
            moves.append(
                ((d, k - 1), rate_events * (1.0 - p_dup) * (1.0 - moved_ok))
            )
            moves.append(((d, k + 1), rate_events * p_dup * moved_ok))

        # Enforce the sum-degree cap / line restriction: redirect moves to
        # missing states into self-loops (i.e. drop them).
        valid = [
            (target, rate)
            for target, rate in moves
            if rate > 0.0 and target in self._index
        ]
        return valid

    def _environment_from(self, pi: np.ndarray) -> _Environment:
        s = self.params.view_size
        d_low = self.params.d_low
        mean_d = 0.0
        mean_dd1 = 0.0
        dup_mass = 0.0
        k_mass = 0.0
        k_full_mass = 0.0
        for prob, (d, k) in zip(pi, self.states):
            mean_d += prob * d
            mean_dd1 += prob * d * (d - 1)
            if d == d_low:
                dup_mass += prob * d * (d - 1)
            k_mass += prob * k
            if d == s:
                k_full_mass += prob * k
        if mean_d <= 0.0 or mean_dd1 <= 0.0:
            # Degenerate distribution; fall back to inert environment.
            return _Environment(0.0, 0.0, 0.0)
        rate = mean_dd1 / (mean_d * s * (s - 1))
        p_dup = dup_mass / mean_dd1
        p_full = (k_full_mass / k_mass) if k_mass > 0.0 else 0.0
        return _Environment(rate, p_dup, p_full)

    def _build_matrix(self, env: _Environment) -> csr_matrix:
        n = len(self.states)
        rates = lil_matrix((n, n))
        outflow = np.zeros(n)
        for i, state in enumerate(self.states):
            for target, rate in self._transitions(state, env):
                j = self._index[target]
                if j == i:
                    continue
                rates[i, j] += rate
                outflow[i] += rate
        lam = float(outflow.max())
        if lam <= 0.0:
            raise RuntimeError("degenerate chain: no transitions anywhere")
        transition = (rates.tocsr() / lam).tolil()
        for i in range(n):
            transition[i, i] = 1.0 - outflow[i] / lam
        return transition.tocsr()

    @staticmethod
    def _stationary(matrix: csr_matrix) -> np.ndarray:
        n = matrix.shape[0]
        a = (matrix.T - _sparse_eye(n)).tolil()
        a[n - 1, :] = 1.0
        b = np.zeros(n)
        b[n - 1] = 1.0
        pi = spsolve(a.tocsr(), b)
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0.0:
            raise RuntimeError("failed to solve for a stationary distribution")
        return pi / total

    # ------------------------------------------------------------------
    # Fixed point
    # ------------------------------------------------------------------

    def solve(
        self,
        max_iterations: int = 200,
        tolerance: float = 1e-10,
        damping: float = 0.5,
    ) -> DegreeMCResult:
        """Run the paper's iterative scheme to the self-consistent π.

        Each iteration computes the stationary distribution for the current
        environment and re-derives the environment from it; ``damping``
        mixes old and new environments for stability.
        """
        s = self.params.view_size
        # Neutral starting guess: moderately busy network.
        env = _Environment(
            rate_per_instance=0.5 / s,
            p_dup_holder=0.01,
            p_full=0.01,
        )
        pi = np.full(len(self.states), 1.0 / len(self.states))
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            matrix = self._build_matrix(env)
            pi = self._stationary(matrix)
            new_env = self._environment_from(pi)
            blended = _Environment(
                rate_per_instance=(
                    damping * env.rate_per_instance
                    + (1 - damping) * new_env.rate_per_instance
                ),
                p_dup_holder=(
                    damping * env.p_dup_holder + (1 - damping) * new_env.p_dup_holder
                ),
                p_full=damping * env.p_full + (1 - damping) * new_env.p_full,
            )
            if new_env.distance(env) < tolerance:
                env = new_env
                break
            env = blended
        return self._result(pi, env, iterations)

    def _result(
        self, pi: np.ndarray, env: _Environment, iterations: int
    ) -> DegreeMCResult:
        out_pmf: Dict[int, float] = {}
        in_pmf: Dict[int, float] = {}
        for prob, (d, k) in zip(pi, self.states):
            out_pmf[d] = out_pmf.get(d, 0.0) + float(prob)
            in_pmf[k] = in_pmf.get(k, 0.0) + float(prob)
        # Duplication probability of a random *initiator*, conditioned on a
        # non-self-loop action: actions are weighted by q(d) ∝ d(d−1).
        weight = 0.0
        dup_weight = 0.0
        for prob, (d, _) in zip(pi, self.states):
            w = prob * d * (d - 1)
            weight += w
            if d == self.params.d_low:
                dup_weight += w
        duplication = dup_weight / weight if weight > 0 else 0.0
        deletion = (1.0 - self.loss_rate) * env.p_full
        return DegreeMCResult(
            states=list(self.states),
            stationary=pi,
            outdegree_pmf=dict(sorted(out_pmf.items())),
            indegree_pmf=dict(sorted(in_pmf.items())),
            p_full=env.p_full,
            p_dup_holder=env.p_dup_holder,
            duplication_probability=duplication,
            deletion_probability=deletion,
            iterations=iterations,
        )

    # ------------------------------------------------------------------
    # Structure (Figure 6.2)
    # ------------------------------------------------------------------

    def transition_classes(self) -> Dict[str, List[Tuple[State, State]]]:
        """Classify non-self-loop transitions as in Figure 6.2.

        ``atomic`` — transitions of lossless, duplication-free,
        deletion-free actions (solid lines): ``(d,k) → (d−2,k+1)`` from an
        initiate and ``(d,k) → (d+2,k−1)`` from being targeted.
        ``lossy`` — transitions that require loss, duplication, or deletion
        (dashed lines).
        """
        atomic: List[Tuple[State, State]] = []
        lossy: List[Tuple[State, State]] = []
        probe = _Environment(rate_per_instance=0.01, p_dup_holder=0.5, p_full=0.5)
        s, d_low = self.params.view_size, self.params.d_low
        for state in self.states:
            d, k = state
            seen = set()
            for target, _ in self._transitions(state, probe):
                if target == state or target in seen:
                    continue
                seen.add(target)
                td, tk = target
                if (td, tk) == (d - 2, k + 1) and d > d_low:
                    atomic.append((state, target))
                elif (td, tk) == (d + 2, k - 1) and d < s:
                    atomic.append((state, target))
                else:
                    lossy.append((state, target))
        return {"atomic": atomic, "lossy": lossy}


def _sparse_eye(n: int):
    from scipy.sparse import identity

    return identity(n, format="csr")
