"""The two-dimensional degree Markov chain (section 6.2, Figures 6.1–6.3).

The chain tracks the joint evolution of a single tagged node's
``(outdegree d, indegree k)`` under S&F in a large system (``n ≫ s`` — the
construction is independent of ``n``).  Three event families change the
tagged state, with per-round rates (one round = each node initiates once):

* **initiate** (rate 1): the tagged node selects two slots; with
  probability ``q = d(d−1)/(s(s−1))`` both are nonempty.  Unless its
  outdegree sits at ``dL`` (duplication) it drops to ``d−2``; if the
  message is delivered (prob ``1−ℓ``) to a non-full receiver (prob
  ``1−P_full``), the receiver stores the tagged id: ``k+1``.
* **targeted** (rate ``k·r``): a holder of the tagged id picks that
  instance as the message *target*.  The holder clears the instance
  (``k−1``) unless it duplicates (prob ``p_dup``); the tagged node, if the
  message arrives (``1−ℓ``) and it has room (``d < s``), stores two ids:
  ``d+2`` — otherwise it deletes them.
* **forwarded** (rate ``k·r``): a holder picks the instance as the
  *payload*.  The instance moves: removed at the holder unless duplicated,
  recreated at the message target if delivered to a non-full node.

The environment parameters are distributional quantities of the chain's
own stationary distribution π, creating the circularity the paper resolves
iteratively ("we search the correct degree distributions iteratively"):

* ``r = E[D(D−1)] / (E[D]·s(s−1))`` — holders are sampled proportionally
  to outdegree (an id instance lives in a uniformly random nonempty slot),
  and target/payload selection is proportional to ``D−1``;
* ``p_dup = μ(dL)·dL·(dL−1) / E[D(D−1)]`` — the holder-duplication
  probability, size-biased exactly as Lemma 6.9 warns ("preferring nodes
  with higher outdegrees");
* ``P_full = E[k·1{d=s}] / E[k]`` — message targets are sampled
  proportionally to indegree, so receiver fullness is indegree-weighted.

Sum degrees are capped at ``3s`` exactly as in the paper ("we consider sum
degrees to be bounded by 3s ... replacing edges leading to these states
with self-loops").

With ``ℓ = 0`` and ``dL = 0`` the chain conserves the sum degree
``d + 2k`` (Lemma 6.2) and is not ergodic on the full grid; pass
``conserved_sum_degree=dm`` to restrict the state space to that line —
this reproduces the "S&F Markov" curves of Figure 6.1.
"""

from __future__ import annotations

import copy
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix, lil_matrix
from scipy.sparse.linalg import spsolve

from repro.core.params import SFParams
from repro.markov.solve_cache import DEFAULT_CACHE, SolveCache, solve_key

State = Tuple[int, int]  # (outdegree, indegree)

# Transition kinds: every rate in ``_transitions`` is ``base × factor``
# where ``base`` depends only on the source state (q for initiates, k for
# holder events) and ``factor`` is one fixed polynomial in the environment
# triple (r, p_dup, p_full).  The vectorized matrix build precomputes
# (row, col, base, kind) once and re-evaluates only the eight factors per
# fixed-point iteration — applying each factor with exactly the operation
# order of the scalar code so both builds are bit-identical.
_INIT_DELIVER = 0       # q · deliver_space
_INIT_FAIL = 1          # q · (1 − deliver_space)
_TARGET_DELIVER = 2     # k·r · (1 − p_dup) · arrive
_TARGET_LOST = 3        # k·r · (1 − p_dup) · (1 − arrive)
_TARGET_DUP = 4         # k·r · p_dup · arrive
_TARGET_FULL_CLEAR = 5  # k·r · (1 − p_dup)
_FORWARD_CLEAR = 6      # k·r · (1 − p_dup) · (1 − deliver_space)
_FORWARD_DUP = 7        # k·r · p_dup · deliver_space
_NUM_KINDS = 8


@dataclass
class _TransitionTemplate:
    """Environment-independent structure of the rate matrix.

    ``rows/cols/base/kind`` hold one entry per potential transition, in
    the exact order the scalar builder generates them (so ordered
    accumulations reproduce its floating-point sums bit for bit).
    ``order/group_starts/merged_rows/merged_cols`` pre-merge duplicate
    ``(row, col)`` pairs via a stable sort, preserving first-generated
    order inside each group.
    """

    rows: np.ndarray
    cols: np.ndarray
    base: np.ndarray
    kind_indices: Tuple[np.ndarray, ...]
    order: np.ndarray
    group_starts: np.ndarray
    merged_rows: np.ndarray
    merged_cols: np.ndarray


@dataclass
class DegreeMCResult:
    """Solved stationary behavior of the degree MC.

    Attributes:
        states: state list aligned with ``stationary``.
        stationary: π over states.
        outdegree_pmf / indegree_pmf: stationary marginals.
        p_full: indegree-weighted receiver-fullness probability.
        p_dup_holder: size-biased holder duplication probability.
        duplication_probability: Pr(duplication | non-self-loop action) of
            a random initiator — the δ-side quantity of Lemmas 6.6/6.7.
        deletion_probability: Pr(deletion | non-self-loop action), i.e.
            ``(1−ℓ)·P_full``.
        iterations: fixed-point iterations used.
        converged: whether the environment fixed point met the tolerance
            within ``max_iterations`` (``solve`` warns when it did not).
    """

    states: List[State]
    stationary: np.ndarray
    outdegree_pmf: Dict[int, float]
    indegree_pmf: Dict[int, float]
    p_full: float
    p_dup_holder: float
    duplication_probability: float
    deletion_probability: float
    iterations: int
    converged: bool = True

    def expected_outdegree(self) -> float:
        return sum(d * p for d, p in self.outdegree_pmf.items())

    def expected_indegree(self) -> float:
        return sum(k * p for k, p in self.indegree_pmf.items())

    def outdegree_mean_std(self) -> Tuple[float, float]:
        from repro.util.stats import distribution_mean_std

        return distribution_mean_std(self.outdegree_pmf)

    def indegree_mean_std(self) -> Tuple[float, float]:
        from repro.util.stats import distribution_mean_std

        return distribution_mean_std(self.indegree_pmf)


@dataclass
class _Environment:
    """The self-consistent field: rates the chain imposes on itself."""

    rate_per_instance: float
    p_dup_holder: float
    p_full: float

    def distance(self, other: "_Environment") -> float:
        return max(
            abs(self.rate_per_instance - other.rate_per_instance),
            abs(self.p_dup_holder - other.p_dup_holder),
            abs(self.p_full - other.p_full),
        )


class DegreeMarkovChain:
    """Builder/solver for the §6.2 degree MC.

    Args:
        params: protocol parameters ``(s, dL)``.
        loss_rate: the uniform loss probability ℓ.
        conserved_sum_degree: restrict states to the line ``d + 2k = dm``
            (requires ``ℓ = 0`` and ``dL = 0``; Lemma 6.2's invariant).
        sum_degree_cap: cap on ``d + 2k`` (default ``3s``, as in the paper).
        matrix_method: ``"vectorized"`` (default) rebuilds the rate matrix
            from precomputed index/coefficient templates each fixed-point
            iteration; ``"loop"`` is the original per-state scalar builder,
            kept as the reference the vectorized path is tested against.
            Both produce bit-identical matrices.
    """

    MATRIX_METHODS = ("vectorized", "loop")

    def __init__(
        self,
        params: SFParams,
        loss_rate: float = 0.0,
        conserved_sum_degree: Optional[int] = None,
        sum_degree_cap: Optional[int] = None,
        matrix_method: str = "vectorized",
    ):
        if matrix_method not in self.MATRIX_METHODS:
            raise ValueError(
                f"matrix_method must be one of {self.MATRIX_METHODS}, "
                f"got {matrix_method!r}"
            )
        self.matrix_method = matrix_method
        self._template: Optional[_TransitionTemplate] = None
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.params = params
        self.loss_rate = loss_rate
        s = params.view_size
        self.sum_degree_cap = sum_degree_cap if sum_degree_cap is not None else 3 * s
        if self.sum_degree_cap < params.d_low:
            raise ValueError("sum_degree_cap below d_low leaves no states")
        self.conserved_sum_degree = conserved_sum_degree
        if conserved_sum_degree is not None:
            if loss_rate != 0.0 or params.d_low != 0:
                raise ValueError(
                    "sum-degree conservation (Lemma 6.2) requires loss_rate=0 "
                    "and d_low=0"
                )
            if conserved_sum_degree % 2 != 0:
                raise ValueError("conserved sum degree must be even")
            if not 0 < conserved_sum_degree <= s:
                raise ValueError(
                    f"conserved sum degree must be in (0, s={s}], got "
                    f"{conserved_sum_degree}"
                )
        self.states = self._build_states()
        self._index = {state: i for i, state in enumerate(self.states)}

    # ------------------------------------------------------------------
    # State space
    # ------------------------------------------------------------------

    def _build_states(self) -> List[State]:
        s, d_low = self.params.view_size, self.params.d_low
        states: List[State] = []
        if self.conserved_sum_degree is not None:
            dm = self.conserved_sum_degree
            for d in range(0, min(s, dm) + 1, 2):
                k = (dm - d) // 2
                states.append((d, k))
            return states
        for d in range(d_low, s + 1, 2):
            max_k = (self.sum_degree_cap - d) // 2
            for k in range(0, max_k + 1):
                if d == 0 and k == 0:
                    continue  # the isolated state is unreachable (Fig 6.2)
                states.append((d, k))
        return states

    # ------------------------------------------------------------------
    # Transition construction
    # ------------------------------------------------------------------

    def _transitions(
        self, state: State, env: _Environment
    ) -> List[Tuple[State, float]]:
        """Non-self-loop transition rates (per round) out of ``state``."""
        s, d_low = self.params.view_size, self.params.d_low
        loss = self.loss_rate
        d, k = state
        pair_choice = s * (s - 1)
        q = d * (d - 1) / pair_choice
        deliver_space = (1.0 - loss) * (1.0 - env.p_full)
        moves: List[Tuple[State, float]] = []

        # Initiate (rate 1).
        if q > 0.0:
            d_after = d if d <= d_low else d - 2
            moves.append(((d_after, k + 1), q * deliver_space))
            if d_after != d:
                moves.append(((d_after, k), q * (1.0 - deliver_space)))
            # Duplication with a lost/deleted message changes nothing.

        if k > 0:
            rate_events = k * env.rate_per_instance
            p_dup = env.p_dup_holder

            # Targeted (tagged node is the message destination).
            gains_room = d < s
            arrive = 1.0 - loss
            if gains_room:
                moves.append(((d + 2, k - 1), rate_events * (1.0 - p_dup) * arrive))
                moves.append(((d, k - 1), rate_events * (1.0 - p_dup) * (1.0 - arrive)))
                moves.append(((d + 2, k), rate_events * p_dup * arrive))
            else:
                # Full view: arriving ids are deleted; only the holder-side
                # clearing matters.
                moves.append(((d, k - 1), rate_events * (1.0 - p_dup)))

            # Forwarded (tagged id is the payload).
            moved_ok = deliver_space
            moves.append(
                ((d, k - 1), rate_events * (1.0 - p_dup) * (1.0 - moved_ok))
            )
            moves.append(((d, k + 1), rate_events * p_dup * moved_ok))

        # Enforce the sum-degree cap / line restriction: redirect moves to
        # missing states into self-loops (i.e. drop them).
        valid = [
            (target, rate)
            for target, rate in moves
            if rate > 0.0 and target in self._index
        ]
        return valid

    def _environment_from(self, pi: np.ndarray) -> _Environment:
        s = self.params.view_size
        d_low = self.params.d_low
        mean_d = 0.0
        mean_dd1 = 0.0
        dup_mass = 0.0
        k_mass = 0.0
        k_full_mass = 0.0
        for prob, (d, k) in zip(pi, self.states):
            mean_d += prob * d
            mean_dd1 += prob * d * (d - 1)
            if d == d_low:
                dup_mass += prob * d * (d - 1)
            k_mass += prob * k
            if d == s:
                k_full_mass += prob * k
        if mean_d <= 0.0 or mean_dd1 <= 0.0:
            # Degenerate distribution; fall back to inert environment.
            return _Environment(0.0, 0.0, 0.0)
        rate = mean_dd1 / (mean_d * s * (s - 1))
        p_dup = dup_mass / mean_dd1
        p_full = (k_full_mass / k_mass) if k_mass > 0.0 else 0.0
        return _Environment(rate, p_dup, p_full)

    def _build_matrix(self, env: _Environment) -> csr_matrix:
        if self.matrix_method == "loop":
            return self._build_matrix_loop(env)
        return self._build_matrix_vectorized(env)

    def _build_matrix_loop(self, env: _Environment) -> csr_matrix:
        """Reference builder: per-state Python loops over ``_transitions``."""
        n = len(self.states)
        rates = lil_matrix((n, n))
        outflow = np.zeros(n)
        for i, state in enumerate(self.states):
            for target, rate in self._transitions(state, env):
                j = self._index[target]
                if j == i:
                    continue
                rates[i, j] += rate
                outflow[i] += rate
        lam = float(outflow.max())
        if lam <= 0.0:
            raise RuntimeError("degenerate chain: no transitions anywhere")
        transition = (rates.tocsr() / lam).tolil()
        for i in range(n):
            transition[i, i] = 1.0 - outflow[i] / lam
        return transition.tocsr()

    def _build_template(self) -> _TransitionTemplate:
        """Enumerate potential transitions once, in scalar-builder order."""
        s, d_low = self.params.view_size, self.params.d_low
        pair_choice = s * (s - 1)
        rows: List[int] = []
        cols: List[int] = []
        base: List[float] = []
        kind: List[int] = []

        def add(source: int, target: State, weight: float, what: int) -> None:
            j = self._index.get(target)
            if j is None or j == source:
                return
            rows.append(source)
            cols.append(j)
            base.append(weight)
            kind.append(what)

        for i, (d, k) in enumerate(self.states):
            q = d * (d - 1) / pair_choice
            if q > 0.0:
                d_after = d if d <= d_low else d - 2
                add(i, (d_after, k + 1), q, _INIT_DELIVER)
                if d_after != d:
                    add(i, (d_after, k), q, _INIT_FAIL)
            if k > 0:
                kf = float(k)
                if d < s:
                    add(i, (d + 2, k - 1), kf, _TARGET_DELIVER)
                    add(i, (d, k - 1), kf, _TARGET_LOST)
                    add(i, (d + 2, k), kf, _TARGET_DUP)
                else:
                    add(i, (d, k - 1), kf, _TARGET_FULL_CLEAR)
                add(i, (d, k - 1), kf, _FORWARD_CLEAR)
                add(i, (d, k + 1), kf, _FORWARD_DUP)

        n = len(self.states)
        rows_arr = np.asarray(rows, dtype=np.int64)
        cols_arr = np.asarray(cols, dtype=np.int64)
        kind_arr = np.asarray(kind, dtype=np.int64)
        # Stable sort groups duplicate (row, col) pairs while keeping each
        # group's entries in generation order, so ``reduceat`` sums them
        # exactly as the scalar builder's ``+=`` does.
        order = np.argsort(rows_arr * n + cols_arr, kind="stable")
        sorted_rows = rows_arr[order]
        sorted_cols = cols_arr[order]
        flat = sorted_rows * n + sorted_cols
        is_start = np.ones(flat.shape, dtype=bool)
        is_start[1:] = flat[1:] != flat[:-1]
        group_starts = np.flatnonzero(is_start)
        return _TransitionTemplate(
            rows=rows_arr,
            cols=cols_arr,
            base=np.asarray(base, dtype=np.float64),
            kind_indices=tuple(
                np.flatnonzero(kind_arr == what) for what in range(_NUM_KINDS)
            ),
            order=order,
            group_starts=group_starts,
            merged_rows=sorted_rows[group_starts],
            merged_cols=sorted_cols[group_starts],
        )

    def _build_matrix_vectorized(self, env: _Environment) -> csr_matrix:
        """Template builder: array scaling plus one coo→csr construction.

        Bit-identical to :meth:`_build_matrix_loop`: each kind's factor is
        applied with the scalar builder's operation order, duplicate
        entries are summed in generation order, env-zeroed entries are
        pruned (the scalar builder's ``rate > 0`` filter), and the
        diagonal is always materialized (``lil`` stores assigned zeros).
        """
        if self._template is None:
            self._template = self._build_template()
        template = self._template
        n = len(self.states)
        loss = self.loss_rate
        arrive = 1.0 - loss
        deliver_space = (1.0 - loss) * (1.0 - env.p_full)
        r = env.rate_per_instance
        p_dup = env.p_dup_holder

        data = np.zeros(template.base.shape, dtype=np.float64)
        for what, idx in enumerate(template.kind_indices):
            if idx.size == 0:
                continue
            b = template.base[idx]
            if what == _INIT_DELIVER:
                value = b * deliver_space
            elif what == _INIT_FAIL:
                value = b * (1.0 - deliver_space)
            elif what == _TARGET_DELIVER:
                value = ((b * r) * (1.0 - p_dup)) * arrive
            elif what == _TARGET_LOST:
                value = ((b * r) * (1.0 - p_dup)) * (1.0 - arrive)
            elif what == _TARGET_DUP:
                value = ((b * r) * p_dup) * arrive
            elif what == _TARGET_FULL_CLEAR:
                value = (b * r) * (1.0 - p_dup)
            elif what == _FORWARD_CLEAR:
                value = ((b * r) * (1.0 - p_dup)) * (1.0 - deliver_space)
            else:  # _FORWARD_DUP
                value = ((b * r) * p_dup) * deliver_space
            data[idx] = value

        outflow = np.bincount(template.rows, weights=data, minlength=n)
        lam = float(outflow.max())
        if lam <= 0.0:
            raise RuntimeError("degenerate chain: no transitions anywhere")
        merged = np.add.reduceat(data[template.order], template.group_starts)
        keep = merged != 0.0
        # scipy's ``csr / lam`` multiplies by the reciprocal; do the same
        # so off-diagonal probabilities match the loop builder bit for bit.
        off_diag = merged[keep] * (1.0 / lam)
        diagonal = 1.0 - outflow / lam
        # ``lil`` assignment drops zeros, so the loop builder stores no
        # zero entries anywhere — prune them here too (off-diagonal zeros
        # come from env-zeroed factors, diagonal zeros from max-outflow
        # rows) to keep the sparsity structure identical.
        diag_keep = diagonal != 0.0
        diag_idx = np.flatnonzero(diag_keep)
        all_rows = np.concatenate([template.merged_rows[keep], diag_idx])
        all_cols = np.concatenate([template.merged_cols[keep], diag_idx])
        all_vals = np.concatenate([off_diag, diagonal[diag_keep]])
        return coo_matrix((all_vals, (all_rows, all_cols)), shape=(n, n)).tocsr()

    @staticmethod
    def _stationary(matrix: csr_matrix) -> np.ndarray:
        n = matrix.shape[0]
        balance = (matrix.T - _sparse_eye(n)).tocsr()
        # Replace the last balance equation with the normalization row
        # Σπ = 1 by splicing a dense ones-row into the csr arrays directly
        # (equivalent to ``tolil(); a[n-1, :] = 1.0`` but without the two
        # format conversions, which dominate the solve at these sizes).
        cut = balance.indptr[n - 1]
        indptr = np.concatenate([balance.indptr[:n], [cut + n]])
        indices = np.concatenate([balance.indices[:cut], np.arange(n)])
        data = np.concatenate([balance.data[:cut], np.ones(n)])
        a = csr_matrix((data, indices, indptr), shape=(n, n))
        b = np.zeros(n)
        b[n - 1] = 1.0
        pi = spsolve(a, b)
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0.0:
            raise RuntimeError("failed to solve for a stationary distribution")
        return pi / total

    # ------------------------------------------------------------------
    # Fixed point
    # ------------------------------------------------------------------

    def solve(
        self,
        max_iterations: int = 200,
        tolerance: float = 1e-10,
        damping: float = 0.5,
        cache: Union[None, bool, SolveCache] = None,
    ) -> DegreeMCResult:
        """Run the paper's iterative scheme to the self-consistent π.

        Each iteration computes the stationary distribution for the current
        environment and re-derives the environment from it; ``damping``
        mixes old and new environments for stability.  Warns (and sets
        ``converged=False`` on the result) when the fixed point has not met
        ``tolerance`` after ``max_iterations``.

        ``cache`` selects the content-addressed solve cache: ``None`` uses
        the process-wide default (disable with ``REPRO_SOLVE_CACHE=off``),
        ``True``/``False`` force it on/off, and a :class:`SolveCache`
        instance substitutes a custom cache.  Keys cover every input the
        result depends on — chain construction and solver settings alike —
        so a hit is always exact; cached results are deep-copied on return.
        """
        cache_obj = self._resolve_cache(cache)
        key = None
        if cache_obj is not None:
            key = solve_key(
                view_size=self.params.view_size,
                d_low=self.params.d_low,
                loss_rate=self.loss_rate,
                conserved_sum_degree=self.conserved_sum_degree,
                sum_degree_cap=self.sum_degree_cap,
                max_iterations=max_iterations,
                tolerance=tolerance,
                damping=damping,
                matrix_method=self.matrix_method,
            )
            hit = cache_obj.get(key)
            if hit is not None:
                return self._finish(copy.deepcopy(hit), max_iterations)
        s = self.params.view_size
        # Neutral starting guess: moderately busy network.
        env = _Environment(
            rate_per_instance=0.5 / s,
            p_dup_holder=0.01,
            p_full=0.01,
        )
        pi = np.full(len(self.states), 1.0 / len(self.states))
        iterations = 0
        converged = False
        for iterations in range(1, max_iterations + 1):
            matrix = self._build_matrix(env)
            pi = self._stationary(matrix)
            new_env = self._environment_from(pi)
            blended = _Environment(
                rate_per_instance=(
                    damping * env.rate_per_instance
                    + (1 - damping) * new_env.rate_per_instance
                ),
                p_dup_holder=(
                    damping * env.p_dup_holder + (1 - damping) * new_env.p_dup_holder
                ),
                p_full=damping * env.p_full + (1 - damping) * new_env.p_full,
            )
            if new_env.distance(env) < tolerance:
                env = new_env
                converged = True
                break
            env = blended
        result = self._result(pi, env, iterations, converged)
        if cache_obj is not None and key is not None:
            cache_obj.put(key, copy.deepcopy(result))
        return self._finish(result, max_iterations)

    @staticmethod
    def _resolve_cache(
        cache: Union[None, bool, SolveCache]
    ) -> Optional[SolveCache]:
        if isinstance(cache, SolveCache):
            return cache
        if cache is True:
            return DEFAULT_CACHE
        if cache is False:
            return None
        return DEFAULT_CACHE if SolveCache.enabled() else None

    def _finish(self, result: DegreeMCResult, max_iterations: int) -> DegreeMCResult:
        if not result.converged:
            warnings.warn(
                f"degree-MC fixed point did not converge within "
                f"{max_iterations} iterations "
                f"(s={self.params.view_size}, dL={self.params.d_low}, "
                f"l={self.loss_rate}); returning the last iterate",
                RuntimeWarning,
                stacklevel=3,
            )
        return result

    def _result(
        self,
        pi: np.ndarray,
        env: _Environment,
        iterations: int,
        converged: bool = True,
    ) -> DegreeMCResult:
        out_pmf: Dict[int, float] = {}
        in_pmf: Dict[int, float] = {}
        for prob, (d, k) in zip(pi, self.states):
            out_pmf[d] = out_pmf.get(d, 0.0) + float(prob)
            in_pmf[k] = in_pmf.get(k, 0.0) + float(prob)
        # Duplication probability of a random *initiator*, conditioned on a
        # non-self-loop action: actions are weighted by q(d) ∝ d(d−1).
        weight = 0.0
        dup_weight = 0.0
        for prob, (d, _) in zip(pi, self.states):
            w = prob * d * (d - 1)
            weight += w
            if d == self.params.d_low:
                dup_weight += w
        duplication = dup_weight / weight if weight > 0 else 0.0
        deletion = (1.0 - self.loss_rate) * env.p_full
        return DegreeMCResult(
            states=list(self.states),
            stationary=pi,
            outdegree_pmf=dict(sorted(out_pmf.items())),
            indegree_pmf=dict(sorted(in_pmf.items())),
            p_full=env.p_full,
            p_dup_holder=env.p_dup_holder,
            duplication_probability=duplication,
            deletion_probability=deletion,
            iterations=iterations,
            converged=converged,
        )

    # ------------------------------------------------------------------
    # Structure (Figure 6.2)
    # ------------------------------------------------------------------

    def transition_classes(self) -> Dict[str, List[Tuple[State, State]]]:
        """Classify non-self-loop transitions as in Figure 6.2.

        ``atomic`` — transitions of lossless, duplication-free,
        deletion-free actions (solid lines): ``(d,k) → (d−2,k+1)`` from an
        initiate and ``(d,k) → (d+2,k−1)`` from being targeted.
        ``lossy`` — transitions that require loss, duplication, or deletion
        (dashed lines).
        """
        atomic: List[Tuple[State, State]] = []
        lossy: List[Tuple[State, State]] = []
        probe = _Environment(rate_per_instance=0.01, p_dup_holder=0.5, p_full=0.5)
        s, d_low = self.params.view_size, self.params.d_low
        for state in self.states:
            d, k = state
            seen = set()
            for target, _ in self._transitions(state, probe):
                if target == state or target in seen:
                    continue
                seen.add(target)
                td, tk = target
                if (td, tk) == (d - 2, k + 1) and d > d_low:
                    atomic.append((state, target))
                elif (td, tk) == (d + 2, k - 1) and d < s:
                    atomic.append((state, target))
                else:
                    lossy.append((state, target))
        return {"atomic": atomic, "lossy": lossy}


def _sparse_eye(n: int):
    from scipy.sparse import identity

    return identity(n, format="csr")
