"""The two-state dependence Markov chain (section 7.4, Figure 7.1).

Models the label of a single nonempty view entry across non-self-loop
transformations:

* **independent → dependent**: the entry is sent with duplication, or a
  previously duplicated copy of it returns — rate at most
  ``(3/2)·(ℓ+δ)`` (Lemma 6.7's duplication bound times Lemma 7.8's ≤ 1/2
  return probability).
* **dependent → independent**: the entry is sent without duplication to a
  node other than its correlated partner — rate at least
  ``(5/6)·(1 − (ℓ+δ))`` (the 5/6 absorbs the ≤ 1/6 self-edge mass β).

The stationary dependent fraction is at most ``2(ℓ+δ)``, giving Lemma
7.9's ``α ≥ 1 − 2(ℓ+δ)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.analysis.independence import (
    dependent_to_independent_rate,
    independent_to_dependent_rate,
)
from repro.markov.chain import MarkovChain

INDEPENDENT = 0
DEPENDENT = 1


class DependenceMarkovChain(MarkovChain):
    """The Figure 7.1 chain instantiated at the paper's worst-case rates.

    Args:
        loss_rate: ℓ, the uniform message-loss probability.
        delta: δ, the no-loss duplication/deletion cap from section 6.3.

    State 0 is *independent*, state 1 *dependent*.  Transition
    probabilities use the paper's bounds, so the stationary dependent
    fraction is an upper bound on the true one.
    """

    def __init__(self, loss_rate: float, delta: float):
        to_dependent = independent_to_dependent_rate(loss_rate, delta)
        to_independent = dependent_to_independent_rate(loss_rate, delta)
        if to_dependent > 1.0:
            raise ValueError(
                f"loss_rate + delta too large: independent→dependent rate "
                f"{to_dependent} exceeds 1"
            )
        matrix = np.array(
            [
                [1.0 - to_dependent, to_dependent],
                [to_independent, 1.0 - to_independent],
            ]
        )
        super().__init__(matrix, labels=["independent", "dependent"])
        self.loss_rate = loss_rate
        self.delta = delta

    def stationary_dependent_fraction(self) -> float:
        """π(dependent) — the bound on the expected dependent fraction."""
        return float(self.stationary_distribution()[DEPENDENT])

    def stationary_independence(self) -> float:
        """α = π(independent); Lemma 7.9 guarantees α ≥ 1 − 2(ℓ+δ)."""
        return float(self.stationary_distribution()[INDEPENDENT])

    def rates(self) -> Tuple[float, float]:
        """(independent→dependent, dependent→independent) probabilities."""
        return float(self.P[INDEPENDENT, DEPENDENT]), float(
            self.P[DEPENDENT, INDEPENDENT]
        )
