"""Generic finite Markov chains (the section 3.2 toolkit).

``MarkovChain`` wraps a stochastic transition matrix with the operations
the paper's arguments use: irreducibility and aperiodicity checks (the two
halves of ergodicity), stationary distributions, step-distribution
evolution ``p_t = p_0 Pᵗ``, total-variation convergence, reversibility and
double-stochasticity tests (Lemmas 7.3/7.4), and trajectory sampling.

Dense matrices are fine up to a few thousand states; the degree MC uses a
sparse path of its own.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components

from repro.util.rng import SeedLike, make_rng


class MarkovChain:
    """A finite MC over states ``0..n−1`` given by a stochastic matrix.

    Args:
        transition: square matrix ``P`` with ``P[x, y] = Pr(x → y)``; rows
            must sum to 1 (within ``tolerance``).
        labels: optional human-readable state labels for reporting.
    """

    def __init__(
        self,
        transition: np.ndarray,
        labels: Optional[Sequence[object]] = None,
        tolerance: float = 1e-9,
    ):
        matrix = np.asarray(transition, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"transition matrix must be square, got {matrix.shape}")
        if (matrix < -tolerance).any():
            raise ValueError("transition matrix has negative entries")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=max(tolerance, 1e-9) * 10):
            worst = int(np.argmax(np.abs(row_sums - 1.0)))
            raise ValueError(
                f"row {worst} sums to {row_sums[worst]!r}, expected 1.0"
            )
        self.P = matrix
        self.n = matrix.shape[0]
        if labels is not None and len(labels) != self.n:
            raise ValueError(
                f"got {len(labels)} labels for {self.n} states"
            )
        self.labels = list(labels) if labels is not None else None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def is_irreducible(self, tolerance: float = 1e-12) -> bool:
        """True if the transition graph is strongly connected."""
        sparse = csr_matrix(self.P > tolerance)
        count, _ = connected_components(sparse, directed=True, connection="strong")
        return count == 1

    def is_aperiodic(self, tolerance: float = 1e-12) -> bool:
        """True if the gcd of cycle lengths is 1.

        Sufficient shortcut used first: any self-loop makes an irreducible
        chain aperiodic (the paper's argument for both its MCs).  Falls back
        to the standard BFS periodicity computation otherwise.
        """
        if np.any(np.diag(self.P) > tolerance):
            return True
        return self._period(tolerance) == 1

    def _period(self, tolerance: float) -> int:
        import math

        # BFS levels; gcd of (level(u) + 1 − level(v)) over edges u→v.
        adjacency: List[List[int]] = [
            list(np.nonzero(self.P[x] > tolerance)[0]) for x in range(self.n)
        ]
        level = {0: 0}
        order = [0]
        for x in order:
            for y in adjacency[x]:
                if y not in level:
                    level[y] = level[x] + 1
                    order.append(y)
        g = 0
        for x in order:
            for y in adjacency[x]:
                if y in level:
                    g = math.gcd(g, level[x] + 1 - level[y])
        return abs(g) if g != 0 else 0

    def is_ergodic(self) -> bool:
        """Irreducible and aperiodic — the premise of the ergodic theorem."""
        return self.is_irreducible() and self.is_aperiodic()

    def is_doubly_stochastic(self, tolerance: float = 1e-9) -> bool:
        """Columns also sum to 1 — implies a uniform stationary distribution
        (the Lemma 7.4 + 7.5 route for the loss-free global MC)."""
        return bool(np.allclose(self.P.sum(axis=0), 1.0, atol=tolerance))

    def is_reversible(self, tolerance: float = 1e-9) -> bool:
        """Detailed balance w.r.t. the stationary distribution (Lemma 7.3)."""
        pi = self.stationary_distribution()
        flow = pi[:, None] * self.P
        return bool(np.allclose(flow, flow.T, atol=tolerance))

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------

    def stationary_distribution(self) -> np.ndarray:
        """The unique π with πP = π (requires irreducibility).

        Solved as a linear system with a normalization row — exact up to
        floating point, no iteration-count concerns.
        """
        a = self.P.T - np.eye(self.n)
        a[-1, :] = 1.0
        b = np.zeros(self.n)
        b[-1] = 1.0
        pi, residuals, rank, _ = np.linalg.lstsq(a, b, rcond=None)
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0:
            raise np.linalg.LinAlgError("failed to find a stationary distribution")
        return pi / total

    def evolve(self, p0: Sequence[float], steps: int) -> np.ndarray:
        """``p_t = p_0 Pᵗ`` — the distribution after ``steps`` transitions."""
        if steps < 0:
            raise ValueError(f"steps must be nonnegative, got {steps}")
        p = np.asarray(p0, dtype=float)
        if p.shape != (self.n,):
            raise ValueError(f"p0 must have shape ({self.n},), got {p.shape}")
        for _ in range(steps):
            p = p @ self.P
        return p

    def mixing_profile(
        self, p0: Sequence[float], steps: int
    ) -> List[float]:
        """Total-variation distance to π after 0..steps transitions.

        The empirical counterpart of the ergodic theorem's
        ``||p_t − π|| → 0`` and of the τε definition in section 7.5.
        """
        from repro.util.stats import total_variation_distance

        pi = self.stationary_distribution()
        p = np.asarray(p0, dtype=float)
        profile = [total_variation_distance(p, pi)]
        for _ in range(steps):
            p = p @ self.P
            profile.append(total_variation_distance(p, pi))
        return profile

    def time_to_epsilon(
        self, p0: Sequence[float], epsilon: float, max_steps: int = 100_000
    ) -> int:
        """Smallest t with ``TV(p_t, π) < ε`` (raises if not reached)."""
        from repro.util.stats import total_variation_distance

        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        pi = self.stationary_distribution()
        p = np.asarray(p0, dtype=float)
        for t in range(max_steps + 1):
            if total_variation_distance(p, pi) < epsilon:
                return t
            p = p @ self.P
        raise RuntimeError(
            f"did not reach TV < {epsilon} within {max_steps} steps"
        )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_path(
        self, start: int, steps: int, seed: SeedLike = None
    ) -> List[int]:
        """Sample a trajectory of ``steps`` transitions from ``start``."""
        if not 0 <= start < self.n:
            raise ValueError(f"start state {start} out of range")
        rng = make_rng(seed)
        path = [start]
        state = start
        for _ in range(steps):
            state = int(rng.choice(self.n, p=self.P[state]))
            path.append(state)
        return path
