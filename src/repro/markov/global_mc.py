"""Exhaustive global Markov chain over membership graphs (sections 7.1–7.2).

For *tiny* systems, every membership graph reachable from an initial state
can be enumerated by breadth-first search over S&F transformations, and the
chain's transition matrix built exactly.  This validates the structural
lemmas directly:

* Lemma 7.3 — with no loss the restricted chain ``G_d̄s`` is reversible;
* Lemma 7.4 — all state in/out-degrees are equal (doubly stochastic);
* Lemma 7.5 — the stationary distribution over ``G_d̄s`` is uniform;
* Lemma 7.1/7.2 — with ``0 < ℓ < 1`` the reachable chain is strongly
  connected and ergodic, hence has a unique stationary distribution.

Partitioned successor states are excluded, with their probability folded
back as self-loops — exactly the paper's construction of 𝒢 (section 7.1).

State counts grow combinatorially; the builder enforces a configurable cap
and raises rather than grinding forever.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.params import SFParams
from repro.markov.chain import MarkovChain
from repro.model.membership_graph import MembershipGraph
from repro.model.transformations import enumerate_action_outcomes

CanonicalState = Tuple


class GlobalMarkovChain:
    """The exact MC on membership graphs reachable from ``initial``.

    Args:
        params: protocol parameters ``(s, dL)``.
        loss_rate: the uniform loss probability ℓ.
        initial: a weakly connected starting membership graph.
        max_states: safety cap on the enumeration.
        exclude_partitioned: fold transitions into partitioned graphs back
            as self-loops (the paper's 𝒢 construction).  Disable only for
            diagnostics.
    """

    def __init__(
        self,
        params: SFParams,
        loss_rate: float,
        initial: MembershipGraph,
        max_states: int = 200_000,
        exclude_partitioned: bool = True,
    ):
        if not initial.is_weakly_connected():
            raise ValueError("initial membership graph must be weakly connected")
        for node in initial.nodes:
            params.validate_outdegree(initial.outdegree(node))
        self.params = params
        self.loss_rate = loss_rate
        self.exclude_partitioned = exclude_partitioned
        self._states: List[MembershipGraph] = []
        self._index: Dict[CanonicalState, int] = {}
        self._rows: List[Dict[int, float]] = []
        self._enumerate(initial, max_states)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def _state_id(self, graph: MembershipGraph) -> int:
        key = graph.canonical_state()
        existing = self._index.get(key)
        if existing is not None:
            return existing
        index = len(self._states)
        self._index[key] = index
        self._states.append(graph)
        self._rows.append({})
        return index

    def _enumerate(self, initial: MembershipGraph, max_states: int) -> None:
        n = initial.num_nodes
        start = self._state_id(initial.copy())
        frontier = [start]
        processed = set()
        while frontier:
            state_id = frontier.pop()
            if state_id in processed:
                continue
            processed.add(state_id)
            graph = self._states[state_id]
            row = self._rows[state_id]
            for node in graph.nodes:
                outcomes = enumerate_action_outcomes(
                    graph,
                    node,
                    self.params.d_low,
                    self.params.view_size,
                    self.loss_rate,
                )
                for prob, successor in outcomes:
                    weighted = prob / n
                    if weighted <= 0.0:
                        continue
                    if (
                        self.exclude_partitioned
                        and not successor.is_weakly_connected()
                    ):
                        # Fold into a self-loop, as in the paper's 𝒢.
                        row[state_id] = row.get(state_id, 0.0) + weighted
                        continue
                    succ_id = self._state_id(successor)
                    if len(self._states) > max_states:
                        raise RuntimeError(
                            f"state space exceeded max_states={max_states}; "
                            "use a smaller system"
                        )
                    row[succ_id] = row.get(succ_id, 0.0) + weighted
                    if succ_id not in processed:
                        frontier.append(succ_id)

    # ------------------------------------------------------------------
    # Views of the chain
    # ------------------------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self._states)

    @property
    def states(self) -> List[MembershipGraph]:
        return list(self._states)

    def transition_matrix(self) -> np.ndarray:
        matrix = np.zeros((self.num_states, self.num_states))
        for i, row in enumerate(self._rows):
            for j, prob in row.items():
                matrix[i, j] = prob
        return matrix

    def to_markov_chain(self) -> MarkovChain:
        labels = [state.canonical_state() for state in self._states]
        return MarkovChain(self.transition_matrix(), labels=labels)

    # ------------------------------------------------------------------
    # Lemma checks
    # ------------------------------------------------------------------

    def sum_degree_vectors(self) -> List[Dict[int, int]]:
        """Sum-degree vector of every enumerated state (Lemma 6.2 check)."""
        return [state.sum_degree_vector() for state in self._states]

    def is_strongly_connected(self) -> bool:
        """Lemma 7.1: with 0 < ℓ < 1 the chain should be strongly connected."""
        return self.to_markov_chain().is_irreducible()

    def stationary_distribution(self) -> np.ndarray:
        return self.to_markov_chain().stationary_distribution()

    def stationary_is_uniform(self, tolerance: float = 1e-8) -> bool:
        """Lemma 7.5: uniform stationary distribution (no-loss setting)."""
        pi = self.stationary_distribution()
        return bool(np.allclose(pi, 1.0 / self.num_states, atol=tolerance))

    def uniformity_of_membership(self) -> Dict[Tuple[int, int], float]:
        """Stationary Pr(v ∈ u.lv) for every ordered pair (Lemma 7.6)."""
        pi = self.stationary_distribution()
        nodes = self._states[0].nodes
        result: Dict[Tuple[int, int], float] = {}
        for u in nodes:
            for v in nodes:
                if u == v:
                    continue
                mass = sum(
                    float(p)
                    for p, state in zip(pi, self._states)
                    if state.has_edge(u, v)
                )
                result[(u, v)] = mass
        return result
