"""Mixing and ε-independence times on exact chains (section 7.5's objects).

The paper distinguishes two quantities:

* the classical **mixing time** ``T_ε`` — convergence from the *worst*
  starting state (prior work's O(n⁹)-style bounds);
* the **ε-independence time** ``τ_ε`` — convergence from a *π-random*
  starting state (Definition in §7.5), the quantity Lemma 7.15 bounds.

For the tiny global chains we can enumerate exactly, both are computable
directly from the transition matrix.  The module also provides the
spectral-gap route (relaxation time) for cross-checking.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.markov.chain import MarkovChain
from repro.util.stats import total_variation_distance


def mixing_time(chain: MarkovChain, epsilon: float, max_steps: int = 10_000) -> int:
    """Worst-case mixing time: smallest t with ``max_x TV(δ_x Pᵗ, π) < ε``."""
    _check_epsilon(epsilon)
    pi = chain.stationary_distribution()
    distributions = np.eye(chain.n)
    for t in range(max_steps + 1):
        worst = max(
            total_variation_distance(distributions[x], pi) for x in range(chain.n)
        )
        if worst < epsilon:
            return t
        distributions = distributions @ chain.P
    raise RuntimeError(f"worst-case mixing did not reach {epsilon} in {max_steps} steps")


def epsilon_independence_time(
    chain: MarkovChain, epsilon: float, max_steps: int = 10_000
) -> float:
    """The paper's τ_ε: expected (over π-random starts) time to ε-closeness.

    Computed as ``Σ_x π(x) · τ_ε(x)`` where ``τ_ε(x)`` is the first t with
    ``TV(δ_x Pᵗ, π) < ε`` — convergence from an *average* state rather
    than the worst one, matching Definition of τε(G) in section 7.5 taken
    in expectation.
    """
    _check_epsilon(epsilon)
    pi = chain.stationary_distribution()
    distributions = np.eye(chain.n)
    remaining = set(range(chain.n))
    hit_time = np.zeros(chain.n)
    for t in range(max_steps + 1):
        settled = [
            x
            for x in remaining
            if total_variation_distance(distributions[x], pi) < epsilon
        ]
        for x in settled:
            hit_time[x] = t
            remaining.discard(x)
        if not remaining:
            return float(np.dot(pi, hit_time))
        distributions = distributions @ chain.P
    raise RuntimeError(
        f"{len(remaining)} states did not reach {epsilon} in {max_steps} steps"
    )


def tv_decay_curve(
    chain: MarkovChain, start: Optional[int], steps: int
) -> List[float]:
    """TV distance to π over time, from state ``start`` or (None) averaged
    over a π-random start."""
    if steps < 0:
        raise ValueError(f"steps must be nonnegative, got {steps}")
    pi = chain.stationary_distribution()
    if start is None:
        curve: List[float] = []
        distributions = np.eye(chain.n)
        for _ in range(steps + 1):
            average = float(
                sum(
                    pi[x] * total_variation_distance(distributions[x], pi)
                    for x in range(chain.n)
                )
            )
            curve.append(average)
            distributions = distributions @ chain.P
        return curve
    if not 0 <= start < chain.n:
        raise ValueError(f"start state {start} out of range")
    p = np.zeros(chain.n)
    p[start] = 1.0
    curve = [total_variation_distance(p, pi)]
    for _ in range(steps):
        p = p @ chain.P
        curve.append(total_variation_distance(p, pi))
    return curve


def spectral_gap(chain: MarkovChain) -> float:
    """``1 − |λ₂|``: the absolute spectral gap of the transition matrix.

    The relaxation time ``1/gap`` lower-bounds mixing up to logs; for
    reversible chains Cheeger's inequalities tie it to conductance:
    ``φ²/2 ≤ gap ≤ 2φ``.
    """
    eigenvalues = np.linalg.eigvals(chain.P)
    moduli = sorted(np.abs(eigenvalues), reverse=True)
    if len(moduli) < 2:
        return 1.0
    # The largest modulus is 1 (Perron root); guard against numerics.
    second = min(moduli[1], 1.0)
    return float(1.0 - second)


def relaxation_time(chain: MarkovChain) -> float:
    """``1 / spectral_gap`` (∞ for disconnected/periodic chains)."""
    gap = spectral_gap(chain)
    if gap <= 1e-12:
        return float("inf")
    return 1.0 / gap


def _check_epsilon(epsilon: float) -> None:
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
