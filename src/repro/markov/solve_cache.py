"""Content-addressed cache for degree-MC fixed-point solves.

Many experiments solve *identical* chains — ``fig_6_2``, ``fig_6_3``,
``table_6_3``, and the sweeps all revisit ``s = 40, dL = 18`` at the same
handful of loss rates.  A solve is pure: its result is fully determined
by the chain construction parameters and the solver settings.  This
module memoizes solves under a key derived from exactly those inputs
(plus a schema version, so any change to the solver semantics invalidates
every old entry wholesale).

Two layers:

* an in-process dictionary (free hits within one experiment run);
* a disk directory of pickle files named by the SHA-256 of the key, so
  separate processes — including :class:`repro.runner.SweepRunner`
  workers — share results across runs.

Disk writes go through a temporary file in the cache directory followed
by :func:`os.replace`, which is atomic on POSIX and Windows: concurrent
workers solving the same chain race harmlessly (last writer wins with an
identical payload) and a reader never observes a half-written entry.
Corrupt or unpicklable entries are quarantined (deleted) on first read
and treated as misses — one bad file costs one re-solve, not a warning
per run forever; unreadable-but-intact files (permissions, I/O errors)
are left in place and miss softly.

Configuration:

* ``REPRO_SOLVE_CACHE=off`` (or ``0``) disables the cache entirely;
* ``REPRO_SOLVE_CACHE_DIR=<path>`` relocates the disk layer (default
  ``~/.cache/repro-gossip/degree-mc``).

The cache stores pickles of results this library itself produced; it is
a private scratch directory, not an interchange format — do not point
``REPRO_SOLVE_CACHE_DIR`` at untrusted data.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs import get_telemetry

LOGGER = logging.getLogger("repro.markov.solve_cache")

#: Bump whenever the solver's numerical behavior changes: every key
#: embeds this, so stale entries from older code can never be returned.
SOLVE_SCHEMA_VERSION = 1

_ENV_SWITCH = "REPRO_SOLVE_CACHE"
_ENV_DIR = "REPRO_SOLVE_CACHE_DIR"


def solve_key(**inputs: Any) -> str:
    """SHA-256 content address for a solve described by ``inputs``.

    ``inputs`` must contain every value the solve result depends on
    (chain construction *and* solver settings).  Floats are addressed by
    ``repr``, which round-trips IEEE doubles exactly — ``0.1`` and the
    nearest double to ``0.1`` share a key, distinct doubles never do.
    """
    canonical = {
        "schema": SOLVE_SCHEMA_VERSION,
        **{name: repr(value) for name, value in sorted(inputs.items())},
    }
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, split by layer."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0

    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


@dataclass
class SolveCache:
    """Two-layer (memory + disk) content-addressed result cache.

    Args:
        directory: disk location; ``None`` resolves per-operation from
            ``REPRO_SOLVE_CACHE_DIR`` falling back to the user cache dir,
            so tests and deployments can redirect it via the environment
            without touching code.
        use_disk: set ``False`` for a memory-only cache.
    """

    directory: Optional[Path] = None
    use_disk: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    _memory: Dict[str, Any] = field(default_factory=dict)
    _quarantine_logged: bool = field(default=False, repr=False)

    @staticmethod
    def enabled() -> bool:
        """Whether caching is globally enabled (``REPRO_SOLVE_CACHE``)."""
        return os.environ.get(_ENV_SWITCH, "").lower() not in ("off", "0", "false")

    def resolve_directory(self) -> Path:
        if self.directory is not None:
            return Path(self.directory)
        override = os.environ.get(_ENV_DIR)
        if override:
            return Path(override)
        return Path.home() / ".cache" / "repro-gossip" / "degree-mc"

    def _path(self, key: str) -> Path:
        return self.resolve_directory() / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Return the cached result for ``key``, or ``None`` on a miss.

        A corrupt or unpicklable disk entry is quarantined (deleted) so
        it costs one re-solve instead of silently re-failing on every
        future read; missing or unreadable files are plain misses.
        """
        tel = get_telemetry()
        if key in self._memory:
            self.stats.memory_hits += 1
            if tel.active:
                tel.inc("solve_cache.memory_hits")
                tel.event("solve_cache.hit", layer="memory")
            return self._memory[key]
        if self.use_disk:
            path = self._path(key)
            try:
                with open(path, "rb") as handle:
                    result = pickle.load(handle)
            except (FileNotFoundError, OSError):
                pass  # missing or unreadable entry: plain miss
            except Exception as exc:
                self._quarantine(path, exc)
            else:
                self.stats.disk_hits += 1
                self._memory[key] = result
                if tel.active:
                    tel.inc("solve_cache.disk_hits")
                    tel.event("solve_cache.hit", layer="disk")
                return result
        self.stats.misses += 1
        if tel.active:
            tel.inc("solve_cache.misses")
            tel.event("solve_cache.miss")
        return None

    def _quarantine(self, path: Path, exc: BaseException) -> None:
        """Delete a corrupt entry; warn once, then log further ones at DEBUG."""
        try:
            path.unlink()
        except OSError:
            return
        if not self._quarantine_logged:
            self._quarantine_logged = True
            LOGGER.warning(
                "quarantined corrupt solve-cache entry %s (%r); the solve "
                "will be recomputed (further quarantines logged at DEBUG)",
                path.name, exc,
            )
        else:
            LOGGER.debug(
                "quarantined corrupt solve-cache entry %s (%r)", path.name, exc
            )

    def put(self, key: str, result: Any) -> None:
        """Store ``result`` under ``key`` in memory and (atomically) on disk."""
        self._memory[key] = result
        self.stats.writes += 1
        tel = get_telemetry()
        if tel.active:
            tel.inc("solve_cache.writes")
            tel.event("solve_cache.store")
        if not self.use_disk:
            return
        directory = self.resolve_directory()
        try:
            directory.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_name, self._path(key))
            except BaseException:
                os.unlink(temp_name)
                raise
        except OSError:
            pass  # read-only filesystem etc.: keep the memory layer only

    def clear_memory(self) -> None:
        self._memory.clear()

    def clear_disk(self) -> None:
        """Delete every cache file in the resolved directory."""
        directory = self.resolve_directory()
        if directory.is_dir():
            for entry in directory.glob("*.pkl"):
                try:
                    entry.unlink()
                except OSError:
                    pass


#: Process-wide default used by :meth:`DegreeMarkovChain.solve` when the
#: caller does not supply a cache of their own.
DEFAULT_CACHE = SolveCache()
