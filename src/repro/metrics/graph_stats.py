"""Graph-level statistics of membership snapshots.

The good-expander consequences of independent uniform views (section 1:
"good connectivity, robustness, and low diameter") are observable here:
weak connectivity, component structure, diameter, and degree assortativity
of exported :class:`~repro.model.membership_graph.MembershipGraph` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx

from repro.model.membership_graph import MembershipGraph


@dataclass
class GraphStatistics:
    """Structural summary of one membership-graph snapshot."""

    num_nodes: int
    num_edges: int
    weakly_connected: bool
    num_weak_components: int
    largest_component_fraction: float
    undirected_diameter: Optional[int]
    self_edges: int
    parallel_edges: int

    def is_healthy_overlay(self) -> bool:
        """Connected with a small diameter relative to log n."""
        import math

        if not self.weakly_connected or self.undirected_diameter is None:
            return False
        if self.num_nodes < 2:
            return True
        budget = max(4, int(4 * math.log2(self.num_nodes)))
        return self.undirected_diameter <= budget


def graph_statistics(
    graph: MembershipGraph, compute_diameter: bool = True
) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for a snapshot.

    Diameter is computed on the undirected simple projection (communication
    is possible along an edge in either direction once ids are known) and
    only when the graph is connected; pass ``compute_diameter=False`` to
    skip the O(V·E) cost on large snapshots.
    """
    nx_graph = graph.to_networkx()
    undirected = nx.Graph(nx_graph.to_undirected())
    undirected.remove_edges_from(nx.selfloop_edges(undirected))
    components = list(nx.connected_components(undirected)) if undirected else []
    connected = len(components) == 1
    largest = max((len(c) for c in components), default=0)
    diameter = None
    if compute_diameter and connected and undirected.number_of_nodes() > 1:
        diameter = nx.diameter(undirected)
    self_edges = sum(graph.self_edge_count(u) for u in graph.nodes)
    parallel = sum(graph.duplicate_edge_count(u) for u in graph.nodes)
    return GraphStatistics(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        weakly_connected=connected,
        num_weak_components=len(components),
        largest_component_fraction=largest / max(graph.num_nodes, 1),
        undirected_diameter=diameter,
        self_edges=self_edges,
        parallel_edges=parallel,
    )
