"""Long-run view-occupancy uniformity (Property M3, Lemma 7.6).

In the steady state every id ``v ≠ u`` should appear in ``u``'s view with
the same probability.  The tracker samples a set of observer nodes
periodically and tallies, for each other id, how often it is present; a
chi-square test against uniformity is the acceptance criterion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.protocols.base import GossipProtocol
from repro.util.stats import chi_square_uniformity


class OccupancyTracker:
    """Tallies presence counts of every id in observer views over time.

    Args:
        observers: the nodes whose views are sampled; defaults to all.
    """

    def __init__(
        self, protocol: GossipProtocol, observers: Optional[Sequence[int]] = None
    ):
        self.protocol = protocol
        self.observers = (
            list(observers) if observers is not None else list(protocol.node_ids())
        )
        self.samples = 0
        # counts[(observer, id)] = number of samples in which observer held id
        self._counts: Dict[Tuple[int, int], int] = {}

    def sample(self) -> None:
        """Record the current views of all observers.

        Array-backed kernels expose ``view_ids_array``; distinct held ids
        then come from one ``np.unique`` per observer instead of a
        Counter build.
        """
        self.samples += 1
        fast = getattr(self.protocol, "view_ids_array", None)
        for observer in self.observers:
            if not self.protocol.has_node(observer):
                continue
            if fast is not None:
                present = np.unique(fast(observer)).tolist()
            else:
                present = self.protocol.view_of(observer)
            for node_id in present:
                key = (observer, node_id)
                self._counts[key] = self._counts.get(key, 0) + 1

    def occupancy_counts(self, observer: int) -> Dict[int, int]:
        """Presence counts of each id ever seen in ``observer``'s view."""
        return {
            node_id: count
            for (obs, node_id), count in self._counts.items()
            if obs == observer
        }

    def pooled_counts(self, population: Sequence[int]) -> List[int]:
        """Presence counts of each id of ``population`` pooled over observers.

        Self-observations are excluded (self-edges are labeled dependent and
        Lemma 7.6 only covers ``v ≠ u``).
        """
        counts = []
        for node_id in population:
            total = 0
            for observer in self.observers:
                if observer == node_id:
                    continue
                total += self._counts.get((observer, node_id), 0)
            counts.append(total)
        return counts

    def chi_square(self, population: Sequence[int]) -> Tuple[float, float]:
        """Chi-square uniformity test over the pooled occupancy counts."""
        counts = self.pooled_counts(population)
        return chi_square_uniformity(counts)

    def max_relative_spread(self, population: Sequence[int]) -> float:
        """(max − min) / mean of the pooled counts — a scale-free spread."""
        counts = self.pooled_counts(population)
        mean = sum(counts) / len(counts)
        if mean == 0:
            raise ValueError("no occupancy recorded")
        return (max(counts) - min(counts)) / mean
