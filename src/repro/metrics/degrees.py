"""Degree summaries and load-balance measurement (Properties M1/M2).

Property M2 asks that, from any initial state, the variance of node
indegrees eventually stays bounded; :func:`indegree_variance` is the
quantity the load-balance experiment tracks over time from adversarial
initial topologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.protocols.base import GossipProtocol


@dataclass
class DegreeSummary:
    """Moments and histograms of the current in/out degree profile."""

    outdegree_mean: float
    outdegree_std: float
    indegree_mean: float
    indegree_std: float
    outdegree_min: int
    outdegree_max: int
    indegree_min: int
    indegree_max: int
    outdegree_histogram: Dict[int, int]
    indegree_histogram: Dict[int, int]

    def indegree_variance(self) -> float:
        return self.indegree_std**2


def degree_summary(protocol: GossipProtocol) -> DegreeSummary:
    """Summarize the current degree profile of all live nodes.

    Array-backed kernels expose ``degree_arrays`` (both profiles from the
    id-matrix in a few vectorized ops); other protocols take the generic
    per-node walk.
    """
    fast = getattr(protocol, "degree_arrays", None)
    if fast is not None:
        out, indeg = fast()
        if out.size == 0:
            raise ValueError("no live nodes")
        outdegrees = out.tolist()
        indegrees = indeg.tolist()
        return _summary_from(outdegrees, indegrees)
    nodes = protocol.node_ids()
    if not nodes:
        raise ValueError("no live nodes")
    outdegrees = [protocol.outdegree(u) for u in nodes]
    indegree_map = protocol.indegrees()
    indegrees = [indegree_map[u] for u in nodes]
    return _summary_from(outdegrees, indegrees)


def _summary_from(outdegrees: List[int], indegrees: List[int]) -> DegreeSummary:
    return DegreeSummary(
        outdegree_mean=float(np.mean(outdegrees)),
        outdegree_std=float(np.std(outdegrees)),
        indegree_mean=float(np.mean(indegrees)),
        indegree_std=float(np.std(indegrees)),
        outdegree_min=int(min(outdegrees)),
        outdegree_max=int(max(outdegrees)),
        indegree_min=int(min(indegrees)),
        indegree_max=int(max(indegrees)),
        outdegree_histogram=_histogram(outdegrees),
        indegree_histogram=_histogram(indegrees),
    )


def indegree_variance(protocol: GossipProtocol) -> float:
    """Variance of live-node indegrees — the Property M2 time series."""
    values = list(protocol.indegrees().values())
    if not values:
        raise ValueError("no live nodes")
    return float(np.var(values))


def id_instance_count(protocol: GossipProtocol, node_id: int) -> int:
    """Instances of ``node_id`` across all live views.

    Unlike :meth:`GossipProtocol.indegrees` this also works for ids of
    departed nodes — the quantity that decays in section 6.5.2.
    """
    state = getattr(protocol, "array_state", None)
    if state is not None:
        ids, _ = state()
        return int((ids == node_id).sum())
    total = 0
    for u in protocol.node_ids():
        total += protocol.view_of(u).get(node_id, 0)
    return total


def _histogram(values: List[int]) -> Dict[int, int]:
    histogram: Dict[int, int] = {}
    for value in values:
        histogram[value] = histogram.get(value, 0) + 1
    return dict(sorted(histogram.items()))
