"""Temporal decorrelation of views (Property M5, section 7.5).

The measurable counterpart of temporal independence: snapshot all views at
time 0, then track how much of each current view still matches its own
snapshot.  For i.i.d. uniform views the expected overlap is the
``d²/n`` baseline, so the *excess* overlap is the temporal dependence that
should decay to zero within O(s·log n) actions per node (Lemma 7.15).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.metrics.independence import expected_iid_overlap
from repro.protocols.base import GossipProtocol

Snapshot = Dict[int, Counter]


def view_snapshot(protocol: GossipProtocol) -> Snapshot:
    """Copy every live node's view multiset."""
    return {u: Counter(protocol.view_of(u)) for u in protocol.node_ids()}


def view_overlap_fraction(protocol: GossipProtocol, snapshot: Snapshot) -> float:
    """Average fraction of a node's current view shared with its snapshot.

    Multiset intersection size divided by current view size, averaged over
    nodes present in both the snapshot and the live population.
    """
    total = 0.0
    counted = 0
    for u, old_view in snapshot.items():
        if not protocol.has_node(u):
            continue
        current = protocol.view_of(u)
        size = sum(current.values())
        if size == 0:
            continue
        shared = sum(min(count, old_view[v]) for v, count in current.items())
        total += shared / size
        counted += 1
    if counted == 0:
        raise ValueError("no nodes to compare against the snapshot")
    return total / counted


def excess_overlap(protocol: GossipProtocol, snapshot: Snapshot) -> float:
    """Overlap minus the i.i.d. baseline ``E[d]/n`` per entry.

    Positive values mean current views still remember the snapshot; ≈0
    means temporal independence at the resolution of this statistic.
    """
    n = len(protocol.node_ids())
    mean_out = sum(protocol.outdegree(u) for u in protocol.node_ids()) / max(n, 1)
    baseline = expected_iid_overlap(mean_out, mean_out, n) / max(mean_out, 1e-12)
    return view_overlap_fraction(protocol, snapshot) - baseline


def temporal_decorrelation_series(
    engine,
    rounds: int,
    sample_every: int = 1,
) -> Tuple[List[float], List[float]]:
    """Drive ``engine`` for ``rounds`` rounds, sampling overlap-vs-t=0.

    Returns ``(round_numbers, overlap_fractions)``.  The engine must be a
    :class:`repro.engine.sequential.SequentialEngine`.
    """
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    if sample_every <= 0:
        raise ValueError(f"sample_every must be positive, got {sample_every}")
    snapshot = view_snapshot(engine.protocol)
    xs: List[float] = [0.0]
    ys: List[float] = [view_overlap_fraction(engine.protocol, snapshot)]
    elapsed = 0
    while elapsed < rounds:
        step = min(sample_every, rounds - elapsed)
        engine.run_rounds(step)
        elapsed += step
        xs.append(float(elapsed))
        ys.append(view_overlap_fraction(engine.protocol, snapshot))
    return xs, ys
