"""Spatial-independence measurement (Property M4, section 7.4).

Two complementary estimators:

* For S&F, :meth:`repro.core.sandf.SendForget.dependent_fraction` reads
  the operational dependence labels (duplication provenance plus
  self-edges and in-view duplicates) — compared against ``2(ℓ+δ)``.
* For *any* protocol, :func:`neighbor_overlap_fraction` measures how much
  neighboring views share content beyond the i.i.d.-uniform baseline
  :func:`expected_iid_overlap` — the observable consequence of dependence
  that protocols which keep sent ids (push, push-pull) accumulate.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import GossipProtocol


def expected_iid_overlap(view_a_size: int, view_b_size: int, n: int) -> float:
    """Expected shared-id count of two i.i.d. uniform views of the given
    sizes over ``n`` ids: ``a·b/n`` (birthday-style first moment).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return view_a_size * view_b_size / n


def mutual_edge_fraction(protocol: GossipProtocol) -> float:
    """Fraction of membership edges ``(u, v)`` whose reverse also exists.

    Mutual edges are the sharpest symptom of reinforcement-with-retention:
    when ``u`` pushes its own id to ``v`` *and keeps* ``v`` in its view,
    the pair ``v ∈ u.lv ∧ u ∈ v.lv`` persists.  Under i.i.d. uniform views
    the expected fraction is ≈ ``E[d]/n``; push and push-pull baselines
    score far above it, S&F only slightly (duplications).
    """
    state = getattr(protocol, "array_state", None)
    if state is not None:
        return _mutual_edge_fraction_array(*state())
    views = {u: protocol.view_of(u) for u in protocol.node_ids()}
    edges = 0
    mutual = 0
    for u, view in views.items():
        for v, multiplicity in view.items():
            if v == u or v not in views:
                continue
            edges += multiplicity
            if views[v].get(u, 0) > 0:
                mutual += multiplicity
    if edges == 0:
        raise ValueError("no membership edges between live nodes")
    return mutual / edges


def _mutual_edge_fraction_array(ids: np.ndarray, node_at: np.ndarray) -> float:
    """Vectorized mutual-edge fraction over an ``(n, s)`` id-matrix.

    Every nonempty slot whose target is live and distinct from its holder
    is one edge instance; an instance is mutual when the reverse directed
    pair occurs anywhere in the matrix.  Pairs are encoded as
    ``src * stride + dst`` scalars so the reverse lookup is one
    ``np.isin`` against the distinct-pair set.
    """
    view_size = ids.shape[1]
    src_ids = np.repeat(node_at, view_size)
    dst_ids = ids.ravel()
    mask = (dst_ids >= 0) & (dst_ids != src_ids) & np.isin(dst_ids, node_at)
    src_e = src_ids[mask]
    dst_e = dst_ids[mask]
    if src_e.size == 0:
        raise ValueError("no membership edges between live nodes")
    stride = int(max(node_at.max(), dst_e.max())) + 1
    pair_keys = np.unique(src_e * stride + dst_e)
    mutual = int(np.isin(dst_e * stride + src_e, pair_keys).sum())
    return mutual / src_e.size


def neighbor_overlap_fraction(protocol: GossipProtocol, max_pairs: int = 50_000) -> float:
    """Average per-edge excess view overlap, normalized by view size.

    For each membership edge ``(u, v)``, counts ids common to ``u``'s and
    ``v``'s views (a symptom of the "gossiped id remains in the sender's
    view" dependence), subtracts the i.i.d. baseline, and averages the
    positive excess divided by the smaller view size.  Zero means views of
    neighbors look independent; protocols that copy ids score high.
    """
    nodes = protocol.node_ids()
    n = len(nodes)
    if n < 2:
        raise ValueError("need at least two nodes")
    views = {u: protocol.view_of(u) for u in nodes}
    live = set(nodes)
    total = 0.0
    pairs = 0
    for u in nodes:
        for v in views[u]:
            if v == u or v not in live:
                continue
            overlap = sum(
                min(count, views[v][node_id])
                for node_id, count in views[u].items()
            )
            # u itself appearing in v's view is trivially correlated with
            # the edge (u, v); exclude that contribution.
            overlap_excl = overlap
            size_u = sum(views[u].values())
            size_v = sum(views[v].values())
            if size_u == 0 or size_v == 0:
                continue
            baseline = expected_iid_overlap(size_u, size_v, n)
            excess = max(0.0, overlap_excl - baseline)
            total += excess / min(size_u, size_v)
            pairs += 1
            if pairs >= max_pairs:
                return total / pairs
    if pairs == 0:
        raise ValueError("no membership edges between live nodes")
    return total / pairs
