"""Empirical measurement of the paper's desired properties (M1–M5).

* :mod:`repro.metrics.degrees` — degree summaries and load balance (M2).
* :mod:`repro.metrics.uniformity` — long-run view-occupancy uniformity (M3).
* :mod:`repro.metrics.independence` — dependence fractions and
  neighbor-view overlap (M4).
* :mod:`repro.metrics.convergence` — temporal decorrelation of views (M5).
* :mod:`repro.metrics.graph_stats` — connectivity/diameter of snapshots.
"""

from repro.metrics.convergence import (
    temporal_decorrelation_series,
    view_overlap_fraction,
    view_snapshot,
)
from repro.metrics.degrees import DegreeSummary, degree_summary, indegree_variance
from repro.metrics.graph_stats import graph_statistics
from repro.metrics.independence import (
    expected_iid_overlap,
    mutual_edge_fraction,
    neighbor_overlap_fraction,
)
from repro.metrics.uniformity import OccupancyTracker

__all__ = [
    "DegreeSummary",
    "degree_summary",
    "indegree_variance",
    "OccupancyTracker",
    "neighbor_overlap_fraction",
    "mutual_edge_fraction",
    "expected_iid_overlap",
    "view_snapshot",
    "view_overlap_fraction",
    "temporal_decorrelation_series",
    "graph_statistics",
]
