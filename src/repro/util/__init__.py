"""Shared utilities: seeded randomness, statistics helpers, and table rendering.

These are deliberately small, dependency-light building blocks used by the
protocol engines, the Markov-chain solvers, and the experiment harness.
"""

from repro.util.rng import make_rng, spawn_rngs
from repro.util.serialization import dump_result, load_result, to_jsonable
from repro.util.stats import (
    binomial_pmf,
    binomial_tail_below,
    chi_square_uniformity,
    distribution_mean_std,
    empirical_distribution,
    total_variation_distance,
)
from repro.util.tables import format_series, format_table

__all__ = [
    "make_rng",
    "spawn_rngs",
    "binomial_pmf",
    "binomial_tail_below",
    "chi_square_uniformity",
    "distribution_mean_std",
    "empirical_distribution",
    "total_variation_distance",
    "format_series",
    "format_table",
    "to_jsonable",
    "dump_result",
    "load_result",
]
