"""JSON serialization of experiment results.

Experiment runners return frozen-ish dataclasses; this module turns them
into plain JSON-compatible structures (and back into dictionaries) so
results can be archived, diffed across runs, and post-processed outside
Python.  Dataclasses nest arbitrarily; numpy scalars/arrays and dict keys
that are not strings (loss rates, state tuples) are converted to JSON-safe
forms.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Union

import numpy as np


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-compatible structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                field.name: to_jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {_key_to_string(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
        return repr(value)  # JSON has no NaN/Inf; store a readable token
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot serialize {type(value).__name__}: {value!r}")


def _key_to_string(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, (bool, int, float, np.integer, np.floating)):
        return str(key)
    if isinstance(key, tuple):
        return ",".join(_key_to_string(part) for part in key)
    raise TypeError(f"cannot use {type(key).__name__} as a JSON key: {key!r}")


def dump_result(result: Any, path: Union[str, Path]) -> Path:
    """Serialize ``result`` to ``path`` as pretty-printed JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(to_jsonable(result), indent=2, sort_keys=True))
    return target


def load_result(path: Union[str, Path]) -> Any:
    """Load a previously dumped result as plain dictionaries/lists."""
    return json.loads(Path(path).read_text())
