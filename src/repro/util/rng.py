"""Deterministic random-number-generator construction.

All stochastic components in this library (protocol engines, loss models,
churn traces) draw from :class:`numpy.random.Generator` instances created
here, so every experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (OS entropy), an integer, a ``SeedSequence``,
    or an existing ``Generator`` (returned unchanged so callers can thread
    a generator through layered components without reseeding).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Return ``count`` independent generators derived from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees the
    child streams are statistically independent.  Useful when a simulation
    needs separate streams for, e.g., the scheduler, the loss model, and
    per-node protocol choices, so that changing how often one component
    draws does not perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's own stream.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(seed: SeedLike, salt: int) -> Optional[int]:
    """Derive a deterministic child seed from ``seed`` and an integer salt.

    Returns ``None`` when ``seed`` is ``None`` so unseeded runs stay unseeded.
    """
    if seed is None:
        return None
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    if isinstance(seed, np.random.SeedSequence):
        base = seed.entropy if isinstance(seed.entropy, int) else 0
    else:
        base = int(seed)
    # A simple splitmix-style mix keeps distinct salts well separated.
    mixed = (base * 0x9E3779B97F4A7C15 + salt * 0xBF58476D1CE4E5B9) % (2**63)
    return mixed
