"""Plain-text rendering of experiment outputs.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_label: str,
    x_values: Sequence[object],
    title: str = "",
    precision: int = 4,
) -> str:
    """Render one or more named series against shared x values.

    This is the textual equivalent of a paper figure: one row per x value,
    one column per curve.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for name in series:
            values = series[name]
            if len(values) != len(x_values):
                raise ValueError(
                    f"series {name!r} has {len(values)} points but there are "
                    f"{len(x_values)} x values"
                )
            row.append(round(float(values[i]), precision))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_histogram(
    pmf: Mapping[int, float],
    title: str = "",
    width: int = 40,
    min_probability: float = 5e-4,
) -> str:
    """Render a pmf as an ASCII bar chart — the text analogue of a figure.

    Bars are scaled to the modal probability; outcomes below
    ``min_probability`` at both tails are trimmed for readability.
    """
    if not pmf:
        raise ValueError("cannot render an empty distribution")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    outcomes = sorted(pmf)
    visible = [x for x in outcomes if pmf[x] >= min_probability]
    if visible:
        low, high = visible[0], visible[-1]
        outcomes = [x for x in outcomes if low <= x <= high]
    peak = max(pmf[x] for x in outcomes)
    if peak <= 0:
        raise ValueError("distribution has no positive mass")
    label_width = max(len(str(x)) for x in outcomes)
    lines = [title] if title else []
    for x in outcomes:
        bar = "█" * max(0, round(pmf[x] / peak * width))
        lines.append(f"{str(x).rjust(label_width)} |{bar.ljust(width)}| {pmf[x]:.4f}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.6g}"
    return str(cell)
