"""Statistics helpers used across the analysis and metrics layers.

Includes the binomial reference distributions the paper compares against
(Figure 6.1), total-variation distance for convergence measurements, and a
chi-square uniformity test used to validate Property M3 empirically.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats


def binomial_pmf(k: int, n: int, p: float) -> float:
    """Return ``P(X = k)`` for ``X ~ Binomial(n, p)``.

    Used to overlay the binomial reference curve of Figure 6.1 on the S&F
    degree distributions.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if k < 0 or k > n:
        return 0.0
    return float(scipy_stats.binom.pmf(k, n, p))


def binomial_pmf_vector(n: int, p: float) -> np.ndarray:
    """Return the full binomial pmf over ``0..n`` as an array."""
    return scipy_stats.binom.pmf(np.arange(n + 1), n, p)


def binomial_tail_below(threshold: int, n: int, p: float) -> float:
    """Return ``P(X < threshold)`` for ``X ~ Binomial(n, p)``.

    This is the tail used by the connectivity condition of section 7.4:
    the probability that a node has fewer than ``threshold`` independent
    out-neighbors when each of ``n`` view slots is independently useful
    with probability ``p``.
    """
    if threshold <= 0:
        return 0.0
    return float(scipy_stats.binom.cdf(threshold - 1, n, p))


def total_variation_distance(
    p: Mapping[object, float] | Sequence[float],
    q: Mapping[object, float] | Sequence[float],
) -> float:
    """Return the total-variation distance between two distributions.

    Accepts either aligned sequences or dict-like distributions keyed by
    outcome (missing keys are treated as probability zero).  This is the
    ``||p_t − π||`` norm in the ergodic theorem of section 3.2.
    """
    if isinstance(p, Mapping) or isinstance(q, Mapping):
        p_map = dict(p) if isinstance(p, Mapping) else dict(enumerate(p))
        q_map = dict(q) if isinstance(q, Mapping) else dict(enumerate(q))
        keys = set(p_map) | set(q_map)
        return 0.5 * sum(abs(p_map.get(k, 0.0) - q_map.get(k, 0.0)) for k in keys)
    p_arr = np.asarray(p, dtype=float)
    q_arr = np.asarray(q, dtype=float)
    if p_arr.shape != q_arr.shape:
        raise ValueError(
            f"distributions must have matching shapes, got {p_arr.shape} and {q_arr.shape}"
        )
    return float(0.5 * np.abs(p_arr - q_arr).sum())


def empirical_distribution(samples: Iterable[int]) -> Dict[int, float]:
    """Return the empirical pmf of integer ``samples`` as a dict."""
    counts: Dict[int, int] = {}
    total = 0
    for value in samples:
        counts[value] = counts.get(value, 0) + 1
        total += 1
    if total == 0:
        raise ValueError("cannot build a distribution from zero samples")
    return {value: count / total for value, count in counts.items()}


def distribution_mean_std(pmf: Mapping[int, float] | Sequence[float]) -> Tuple[float, float]:
    """Return (mean, standard deviation) of a pmf.

    Accepts a dict mapping outcome to probability or a dense sequence
    indexed by outcome.  Used to reproduce the in-text table of section 6.4
    (average indegrees "28 ± 3.4" etc.).
    """
    if isinstance(pmf, Mapping):
        items = list(pmf.items())
    else:
        items = list(enumerate(pmf))
    total = sum(prob for _, prob in items)
    if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
        raise ValueError(f"pmf must sum to 1 (got {total})")
    mean = sum(value * prob for value, prob in items)
    var = sum((value - mean) ** 2 * prob for value, prob in items)
    return mean, math.sqrt(max(var, 0.0))


def chi_square_uniformity(counts: Sequence[int]) -> Tuple[float, float]:
    """Chi-square test that category ``counts`` came from a uniform law.

    Returns ``(statistic, p_value)``.  Used to validate Property M3: the
    long-run occupancy counts of each id in a tagged node's view should be
    statistically uniform across ids.
    """
    counts_arr = np.asarray(counts, dtype=float)
    if counts_arr.ndim != 1 or len(counts_arr) < 2:
        raise ValueError("need at least two categories")
    if counts_arr.sum() <= 0:
        raise ValueError("counts must sum to a positive number")
    statistic, p_value = scipy_stats.chisquare(counts_arr)
    return float(statistic), float(p_value)


def geometric_survival(per_round_removal: float, rounds: int) -> float:
    """Return ``(1 − per_round_removal) ** rounds``.

    The survival form used throughout section 6.5's decay lemmas.
    """
    if not 0.0 <= per_round_removal <= 1.0:
        raise ValueError(f"removal probability must be in [0, 1], got {per_round_removal}")
    if rounds < 0:
        raise ValueError(f"rounds must be nonnegative, got {rounds}")
    return (1.0 - per_round_removal) ** rounds
