"""Asynchronous discrete-event engine with overlapping actions.

The paper's motivation for S&F is that its actions need no atomicity:
each *step* executes at a single node, and steps of different actions may
interleave arbitrarily.  This engine realizes that setting: every node
initiates on an independent Poisson clock (loosely synchronized rates, as
assumed in section 4.1), messages take a sampled delay, and receive steps
fire whenever their message arrives — possibly long after the sender has
moved on.

Experiments use it to confirm that S&F's steady-state properties measured
under the serial model persist under full asynchrony.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.engine.sequential import EngineStats
from repro.net.delay import ConstantDelay, DelayModel
from repro.obs import get_telemetry
from repro.net.loss import LossModel, NoLoss
from repro.protocols.base import (
    DeliverEvent,
    GossipProtocol,
    InitiateEvent,
    Message,
    SendEffect,
)
from repro.util.rng import SeedLike, make_rng

NodeId = int

_INITIATE = 0
_DELIVER = 1


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    kind: int = field(compare=False)
    node: NodeId = field(compare=False, default=-1)
    message: Optional[Message] = field(compare=False, default=None)
    reply: bool = field(compare=False, default=False)


class DiscreteEventEngine:
    """Event-driven simulation of a gossip protocol.

    Args:
        protocol: the protocol instance.
        loss: message-loss model (default lossless).
        delay: message-delay model (default constant 1.0 — so actions
            systematically overlap: many messages are in flight at once).
        rate: per-node initiation rate (actions per unit time); the mean
            inter-action gap at a node is ``1/rate``.
        seed: RNG seed.
    """

    def __init__(
        self,
        protocol: GossipProtocol,
        loss: Optional[LossModel] = None,
        delay: Optional[DelayModel] = None,
        rate: float = 1.0,
        seed: SeedLike = None,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.protocol = protocol
        self.loss = loss if loss is not None else NoLoss()
        self.delay = delay if delay is not None else ConstantDelay(1.0)
        self.rate = rate
        self.rng = make_rng(seed)
        self.now = 0.0
        self.stats = EngineStats()
        self.messages_in_flight = 0
        self.max_in_flight = 0
        self._queue: List[_Event] = []
        self._sequence = itertools.count()
        for node in protocol.node_ids():
            self._schedule_initiate(node)

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------

    def _schedule_initiate(self, node: NodeId) -> None:
        gap = float(self.rng.exponential(1.0 / self.rate))
        heapq.heappush(
            self._queue,
            _Event(self.now + gap, next(self._sequence), _INITIATE, node=node),
        )

    def _schedule_delivery(self, effect: SendEffect) -> None:
        message = effect.message
        latency = self.delay.sample(message.sender, message.target, self.rng)
        heapq.heappush(
            self._queue,
            _Event(
                self.now + latency,
                next(self._sequence),
                _DELIVER,
                message=message,
                reply=effect.reply,
            ),
        )
        self.messages_in_flight += 1
        self.max_in_flight = max(self.max_in_flight, self.messages_in_flight)

    def add_node(self, node_id: NodeId, bootstrap_ids) -> None:
        """Join a node and start its initiation clock."""
        self.protocol.add_node(node_id, bootstrap_ids)
        self._schedule_initiate(node_id)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_until(self, end_time: float) -> None:
        """Process events until simulated time reaches ``end_time``.

        With per-node rate 1, ``end_time`` is comparable to a number of
        rounds of the sequential engine.
        """
        tel = get_telemetry()
        wall0 = time.perf_counter() if tel.active else 0.0
        cpu0 = time.process_time() if tel.active else 0.0
        processed = 0
        while self._queue and self._queue[0].time <= end_time:
            event = heapq.heappop(self._queue)
            self.now = event.time
            if event.kind == _INITIATE:
                self._handle_initiate(event.node)
            else:
                self._handle_delivery(event.message, event.reply)
            processed += 1
        self.now = max(self.now, end_time)
        if tel.active:
            self._record_run(tel, wall0, cpu0, processed)

    def run_events(self, count: int) -> None:
        """Process exactly ``count`` events (or until the queue drains)."""
        tel = get_telemetry()
        wall0 = time.perf_counter() if tel.active else 0.0
        cpu0 = time.process_time() if tel.active else 0.0
        processed = 0
        for _ in range(count):
            if not self._queue:
                break
            event = heapq.heappop(self._queue)
            self.now = event.time
            if event.kind == _INITIATE:
                self._handle_initiate(event.node)
            else:
                self._handle_delivery(event.message, event.reply)
            processed += 1
        if tel.active:
            self._record_run(tel, wall0, cpu0, processed)

    def _record_run(self, tel, wall0: float, cpu0: float, processed: int) -> None:
        """Telemetry for one event-processing stretch."""
        wall = time.perf_counter() - wall0
        tel.observe_timer("phase.des_run", wall, time.process_time() - cpu0)
        tel.inc("des.events", processed)
        tel.set_gauge("des.max_in_flight", self.max_in_flight)
        tel.event(
            "des.run",
            events=processed,
            now=round(self.now, 6),
            in_flight=self.messages_in_flight,
            duration_s=round(wall, 6),
        )

    def _handle_initiate(self, node: NodeId) -> None:
        if not self.protocol.has_node(node):
            return  # departed node: its clock dies with it
        self.stats.actions += 1
        for effect in self.protocol.handle(InitiateEvent(node), self.rng):
            self._route(effect)
        self._schedule_initiate(node)

    def _route(self, effect: SendEffect) -> None:
        message = effect.message
        if effect.reply:
            self.stats.replies_sent += 1
        else:
            self.stats.messages_sent += 1
        if self.loss.is_lost(message.sender, message.target, self.rng):
            if effect.reply:
                self.stats.replies_lost += 1
            else:
                self.stats.messages_lost += 1
            return
        self._schedule_delivery(effect)

    def _handle_delivery(self, message: Message, reply: bool) -> None:
        self.messages_in_flight -= 1
        if not self.protocol.has_node(message.target):
            # Target departed while the message was in flight.  This is the
            # churn channel, not network loss: account it per kind (a reply
            # whose requester has since left must land in
            # ``replies_to_departed``, or conservation double-counts it as
            # loss and loss_fraction() overstates ℓ under churn).
            if reply:
                self.stats.replies_to_departed += 1
            else:
                self.stats.messages_to_departed += 1
            return
        if reply:
            self.stats.replies_delivered += 1
        else:
            self.stats.messages_delivered += 1
        for effect in self.protocol.handle(DeliverEvent(message), self.rng):
            self._route(effect)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def actions(self) -> int:
        """Initiate actions executed (alias of ``stats.actions``)."""
        return self.stats.actions

    @property
    def messages_lost(self) -> int:
        """Every send that never reached a receive step.

        Historical aggregate (network loss plus departed targets, both
        kinds); the split lives in :attr:`stats`, whose
        ``check_conservation`` distinguishes loss from churn.
        """
        return (
            self.stats.messages_lost
            + self.stats.replies_lost
            + self.stats.messages_to_departed
            + self.stats.replies_to_departed
        )

    def rounds_elapsed(self) -> float:
        """Simulated time × rate ≈ expected actions initiated per node."""
        return self.now * self.rate

    def queue_size(self) -> int:
        return len(self._queue)
