"""Simulation engines.

* :class:`~repro.engine.sequential.SequentialEngine` — the paper's analysis
  model: a central scheduler repeatedly picks a uniformly random node,
  invokes its initiate action, and completes the (possibly lost) receive
  before the next action.  A *round* is ``n`` actions.
* :class:`~repro.engine.des.DiscreteEventEngine` — an asynchronous engine
  with per-node timers and message delays, where actions overlap in time.
  S&F's steps are atomic at a single node, so it runs unchanged here —
  demonstrating the "no atomicity needed" design point of section 5.
"""

from repro.engine.des import DiscreteEventEngine
from repro.engine.sequential import EngineStats, SequentialEngine

__all__ = ["SequentialEngine", "EngineStats", "DiscreteEventEngine"]
