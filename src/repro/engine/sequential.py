"""The sequential action engine — the paper's analysis model (section 5).

"In our analysis, we assume that a central entity repeatedly selects a
random node, invokes its S&F-InitiateAction method, and waits for the
completion of S&F-Receive by the receiving node (in case a message was
sent)."  This engine does exactly that, with the loss model deciding
whether the receive step ever runs.

A *round* (section 6.5) is the period during which each node is expected
to initiate exactly one action, i.e. ``n`` scheduler picks.

The engine drives either a :class:`repro.protocols.base.GossipProtocol`
(one ``initiate``/``deliver`` exchange per step, any protocol) or a
:class:`repro.kernel.base.SimulationKernel` (S&F state mutation delegated
to the kernel in batches, sized so that round hooks still fire at exactly
the same action boundaries).  Rounds, hooks, and statistics behave the
same either way.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.kernel.base import LoadCounts, SimulationKernel
from repro.obs import get_telemetry
from repro.net.loss import LossModel, NoLoss
from repro.net.transport import LoopbackTransport
from repro.protocols.base import (
    DeliverEvent,
    GossipProtocol,
    InitiateEvent,
    SendEffect,
)
from repro.util.rng import SeedLike, make_rng

NodeId = int
SnapshotHook = Callable[["SequentialEngine", int], None]

#: Upper bound on one kernel batch, so hook-free runs still draw their
#: randomness in bounded blocks.
MAX_BATCH_ACTIONS = 16384


@dataclass
class EngineStats:
    """Transport-level counters (the protocol keeps its own in ``stats``).

    ``messages_to_departed`` counts messages that reached the network but
    evaporated because the target had left — the paper's leave model makes
    that indistinguishable from loss *for the sender*, but it is not
    network loss, so :meth:`loss_fraction` excludes it (churn experiments
    would otherwise overstate ℓ).
    """

    actions: int = 0
    messages_sent: int = 0
    messages_lost: int = 0
    messages_to_departed: int = 0
    messages_delivered: int = 0
    replies_sent: int = 0
    replies_lost: int = 0
    replies_to_departed: int = 0
    replies_delivered: int = 0

    def check_conservation(self) -> None:
        """Assert that every send is accounted for, kind by kind.

        ``sent == delivered + lost + to_departed`` must hold exactly for
        messages and for replies — the transport loses nothing silently.
        Property-tested across all backends and loss models in
        ``tests/test_engine_stats_invariant.py``.
        """
        if self.messages_sent != (
            self.messages_delivered + self.messages_lost + self.messages_to_departed
        ):
            raise AssertionError(f"message counters do not balance: {self}")
        if self.replies_sent != (
            self.replies_delivered + self.replies_lost + self.replies_to_departed
        ):
            raise AssertionError(f"reply counters do not balance: {self}")

    def loss_fraction(self) -> float:
        """Fraction of sends lost *in the network* (excludes departures)."""
        total = self.messages_sent + self.replies_sent
        if total == 0:
            return 0.0
        return (self.messages_lost + self.replies_lost) / total


@dataclass
class _Hook:
    every_rounds: int
    callback: SnapshotHook
    next_round: int = field(default=0)


class SequentialEngine:
    """Drives a protocol or kernel under the serial scheduling model.

    Args:
        protocol: the protocol instance (owns all node state), or a
            :class:`~repro.kernel.base.SimulationKernel` backend to which
            all state mutation is delegated in batches.
        loss: message-loss model; defaults to a lossless network.
        seed: RNG seed (or an existing generator) for full reproducibility.
    """

    def __init__(
        self,
        protocol: GossipProtocol,
        loss: Optional[LossModel] = None,
        seed: SeedLike = None,
    ):
        self.protocol = protocol
        self.kernel: Optional[SimulationKernel] = (
            protocol if isinstance(protocol, SimulationKernel) else None
        )
        self.loss = loss if loss is not None else NoLoss()
        # The engine's channel: loss is applied at the send seam, surviving
        # effects are drained FIFO by _pump (kernel backends bypass the
        # transport and consume self.loss directly inside run_batch).
        self.transport = LoopbackTransport(self.loss)
        self.rng = make_rng(seed)
        self.stats = EngineStats()
        self.rounds_completed = 0.0
        self._hooks: List[_Hook] = []
        # Last integer round for which an ``engine.round`` trace record was
        # emitted (telemetry only; never consulted when tracing is off).
        self._trace_round = 0
        # Per-node transport load: §2 motivates load balance (Property M2)
        # by "the number of messages received by a node is proportional to
        # the number of its in-neighbors" — these counters let experiments
        # verify that operational reading directly.  Kernel backends own
        # the counters; the dict-like views read through to them.
        if self.kernel is not None:
            self.received_by = LoadCounts(self.kernel, "received")
            self.sent_by = LoadCounts(self.kernel, "sent")
        else:
            self.received_by: Dict[NodeId, int] = {}
            self.sent_by: Dict[NodeId, int] = {}

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(self) -> None:
        """One scheduler pick: a uniformly random node initiates an action."""
        if self.kernel is not None:
            self.kernel.run_batch(1, self.rng, self.loss, self.stats)
            return
        nodes = self.protocol.node_ids()
        if not nodes:
            raise RuntimeError("no live nodes to schedule")
        initiator = nodes[int(self.rng.integers(len(nodes)))]
        self.step_node(initiator)

    def step_node(self, initiator: NodeId) -> None:
        """Run one complete action initiated by ``initiator``.

        The protocol is driven purely through the event seam: the initiate
        event's effects enter the transport, and :meth:`_pump` runs every
        resulting receive step (and routes any reply effects) until the
        channel is empty — the serial model's "wait for completion".
        """
        if self.kernel is not None:
            raise NotImplementedError(
                "kernel backends schedule initiators internally; use step()"
            )
        self.stats.actions += 1
        for effect in self.protocol.handle(InitiateEvent(initiator), self.rng):
            self._dispatch(effect)
        self._pump()

    def _dispatch(self, effect: SendEffect) -> None:
        """Account one outbound effect and offer it to the transport."""
        message = effect.message
        if effect.reply:
            self.stats.replies_sent += 1
        else:
            self.stats.messages_sent += 1
        self.sent_by[message.sender] = self.sent_by.get(message.sender, 0) + 1
        if not self.transport.send(effect, self.rng):
            if effect.reply:
                self.stats.replies_lost += 1
            else:
                self.stats.messages_lost += 1

    def _pump(self) -> None:
        """Deliver queued effects in FIFO order until the channel drains.

        FIFO matches the pre-seam recursion's RNG draw order exactly
        (request receive draws, then reply loss draw, then reply receive
        draws), which is what keeps seeded runs bit-identical.
        """
        while True:
            effect = self.transport.poll()
            if effect is None:
                return
            message = effect.message
            if not self.protocol.has_node(message.target):
                # Departed target: message evaporates (the sender cannot
                # tell).  Not network loss — tracked separately so
                # loss_fraction() reflects ℓ alone even under churn.
                if effect.reply:
                    self.stats.replies_to_departed += 1
                else:
                    self.stats.messages_to_departed += 1
                continue
            if effect.reply:
                self.stats.replies_delivered += 1
            else:
                self.stats.messages_delivered += 1
            self.received_by[message.target] = (
                self.received_by.get(message.target, 0) + 1
            )
            for produced in self.protocol.handle(DeliverEvent(message), self.rng):
                self._dispatch(produced)

    def _population(self) -> int:
        if self.kernel is not None:
            return self.kernel.population
        return len(self.protocol.node_ids())

    def _next_batch_size(self, remaining: int) -> int:
        """Largest batch that ends no later than the next hook boundary."""
        population = max(self._population(), 1)
        limit = min(remaining, MAX_BATCH_ACTIONS)
        for hook in self._hooks:
            to_boundary = (hook.next_round - 1e-9 - self.rounds_completed) * population
            limit = min(limit, max(1, math.ceil(to_boundary)))
        return limit

    def _run_kernel_actions(self, count: int) -> None:
        tel = get_telemetry()
        remaining = count
        while remaining > 0:
            batch = self._next_batch_size(remaining)
            if tel.active:
                wall0 = time.perf_counter()
                cpu0 = time.process_time()
                self.kernel.run_batch(batch, self.rng, self.loss, self.stats)
                wall = time.perf_counter() - wall0
                tel.observe_timer(
                    "phase.kernel_batch", wall, time.process_time() - cpu0
                )
                tel.inc("engine.actions", batch)
                tel.inc("engine.batches")
                tel.event(
                    "engine.batch", actions=batch, duration_s=round(wall, 6)
                )
            else:
                self.kernel.run_batch(batch, self.rng, self.loss, self.stats)
            self.rounds_completed += batch / max(self.kernel.population, 1)
            if tel.tracing_on:
                self._emit_round_records(tel)
            self._fire_hooks()
            remaining -= batch

    def _emit_round_records(self, tel) -> None:
        """One ``engine.round`` trace record per newly completed round."""
        current = int(self.rounds_completed + 1e-9)
        while self._trace_round < current:
            self._trace_round += 1
            tel.event(
                "engine.round",
                round=self._trace_round,
                actions=self.stats.actions,
                messages_sent=self.stats.messages_sent,
                messages_delivered=self.stats.messages_delivered,
                messages_lost=self.stats.messages_lost,
            )

    def _record_engine_run(
        self, tel, wall0: float, cpu0: float, actions_before: int
    ) -> None:
        """Telemetry for one per-action (non-kernel) execution stretch."""
        tel.observe_timer(
            "phase.engine_run",
            time.perf_counter() - wall0,
            time.process_time() - cpu0,
        )
        tel.inc("engine.actions", self.stats.actions - actions_before)
        if tel.tracing_on:
            self._emit_round_records(tel)

    def run_actions(self, count: int) -> None:
        """Run ``count`` scheduler picks, firing any registered hooks."""
        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        if self.kernel is not None:
            self._run_kernel_actions(count)
            return
        tel = get_telemetry()
        wall0 = time.perf_counter() if tel.active else 0.0
        cpu0 = time.process_time() if tel.active else 0.0
        actions_before = self.stats.actions
        for _ in range(count):
            self.step()
            population = max(len(self.protocol.node_ids()), 1)
            self.rounds_completed += 1.0 / population
            self._fire_hooks()
        if tel.active:
            self._record_engine_run(tel, wall0, cpu0, actions_before)

    def run_rounds(self, rounds: float) -> None:
        """Run until ``rounds`` more rounds have elapsed.

        One round = ``n`` actions at the current population size, tracked
        incrementally so the definition stays correct under churn.
        """
        if rounds < 0:
            raise ValueError(f"rounds must be nonnegative, got {rounds}")
        target = self.rounds_completed + rounds
        if self.kernel is not None:
            while self.rounds_completed < target - 1e-12:
                population = max(self.kernel.population, 1)
                needed = math.ceil((target - 1e-12 - self.rounds_completed) * population)
                self._run_kernel_actions(max(1, needed))
            return
        tel = get_telemetry()
        wall0 = time.perf_counter() if tel.active else 0.0
        cpu0 = time.process_time() if tel.active else 0.0
        actions_before = self.stats.actions
        while self.rounds_completed < target - 1e-12:
            self.step()
            population = max(len(self.protocol.node_ids()), 1)
            self.rounds_completed += 1.0 / population
            self._fire_hooks()
        if tel.active:
            self._record_engine_run(tel, wall0, cpu0, actions_before)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def add_round_hook(self, every_rounds: int, callback: SnapshotHook) -> None:
        """Invoke ``callback(engine, round_number)`` every ``every_rounds`` rounds."""
        if every_rounds <= 0:
            raise ValueError(f"every_rounds must be positive, got {every_rounds}")
        self._hooks.append(
            _Hook(every_rounds=every_rounds, callback=callback, next_round=every_rounds)
        )

    def _fire_hooks(self) -> None:
        # The 1e-9 slack absorbs floating-point drift in the 1/n round
        # accumulation (n actions of 1/n can sum to fractionally under 1).
        for hook in self._hooks:
            while self.rounds_completed >= hook.next_round - 1e-9:
                hook.callback(self, hook.next_round)
                hook.next_round += hook.every_rounds
