"""The sequential action engine — the paper's analysis model (section 5).

"In our analysis, we assume that a central entity repeatedly selects a
random node, invokes its S&F-InitiateAction method, and waits for the
completion of S&F-Receive by the receiving node (in case a message was
sent)."  This engine does exactly that, with the loss model deciding
whether the receive step ever runs.

A *round* (section 6.5) is the period during which each node is expected
to initiate exactly one action, i.e. ``n`` scheduler picks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net.loss import LossModel, NoLoss
from repro.protocols.base import GossipProtocol, Message
from repro.util.rng import SeedLike, make_rng

NodeId = int
SnapshotHook = Callable[["SequentialEngine", int], None]


@dataclass
class EngineStats:
    """Transport-level counters (the protocol keeps its own in ``stats``)."""

    actions: int = 0
    messages_sent: int = 0
    messages_lost: int = 0
    messages_delivered: int = 0
    replies_sent: int = 0
    replies_lost: int = 0

    def loss_fraction(self) -> float:
        total = self.messages_sent + self.replies_sent
        if total == 0:
            return 0.0
        return (self.messages_lost + self.replies_lost) / total


@dataclass
class _Hook:
    every_rounds: int
    callback: SnapshotHook
    next_round: int = field(default=0)


class SequentialEngine:
    """Drives a :class:`GossipProtocol` under the serial scheduling model.

    Args:
        protocol: the protocol instance (owns all node state).
        loss: message-loss model; defaults to a lossless network.
        seed: RNG seed (or an existing generator) for full reproducibility.
    """

    def __init__(
        self,
        protocol: GossipProtocol,
        loss: Optional[LossModel] = None,
        seed: SeedLike = None,
    ):
        self.protocol = protocol
        self.loss = loss if loss is not None else NoLoss()
        self.rng = make_rng(seed)
        self.stats = EngineStats()
        self.rounds_completed = 0.0
        self._hooks: List[_Hook] = []
        # Per-node transport load: §2 motivates load balance (Property M2)
        # by "the number of messages received by a node is proportional to
        # the number of its in-neighbors" — these counters let experiments
        # verify that operational reading directly.
        self.received_by: Dict[NodeId, int] = {}
        self.sent_by: Dict[NodeId, int] = {}

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(self) -> None:
        """One scheduler pick: a uniformly random node initiates an action."""
        nodes = self.protocol.node_ids()
        if not nodes:
            raise RuntimeError("no live nodes to schedule")
        initiator = nodes[int(self.rng.integers(len(nodes)))]
        self.step_node(initiator)

    def step_node(self, initiator: NodeId) -> None:
        """Run one complete action initiated by ``initiator``."""
        self.stats.actions += 1
        message = self.protocol.initiate(initiator, self.rng)
        if message is not None:
            self._transmit(message)

    def _transmit(self, message: Message, is_reply: bool = False) -> None:
        if is_reply:
            self.stats.replies_sent += 1
        else:
            self.stats.messages_sent += 1
        self.sent_by[message.sender] = self.sent_by.get(message.sender, 0) + 1
        if self.loss.is_lost(message.sender, message.target, self.rng):
            if is_reply:
                self.stats.replies_lost += 1
            else:
                self.stats.messages_lost += 1
            return
        if not self.protocol.has_node(message.target):
            # Departed target: message evaporates (the sender cannot tell).
            if is_reply:
                self.stats.replies_lost += 1
            else:
                self.stats.messages_lost += 1
            return
        self.stats.messages_delivered += 1
        self.received_by[message.target] = self.received_by.get(message.target, 0) + 1
        reply = self.protocol.deliver(message, self.rng)
        if reply is not None:
            self._transmit(reply, is_reply=True)

    def run_actions(self, count: int) -> None:
        """Run ``count`` scheduler picks, firing any registered hooks."""
        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        for _ in range(count):
            self.step()
            population = max(len(self.protocol.node_ids()), 1)
            self.rounds_completed += 1.0 / population
            self._fire_hooks()

    def run_rounds(self, rounds: float) -> None:
        """Run until ``rounds`` more rounds have elapsed.

        One round = ``n`` actions at the current population size, tracked
        incrementally so the definition stays correct under churn.
        """
        if rounds < 0:
            raise ValueError(f"rounds must be nonnegative, got {rounds}")
        target = self.rounds_completed + rounds
        while self.rounds_completed < target - 1e-12:
            self.step()
            population = max(len(self.protocol.node_ids()), 1)
            self.rounds_completed += 1.0 / population
            self._fire_hooks()

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def add_round_hook(self, every_rounds: int, callback: SnapshotHook) -> None:
        """Invoke ``callback(engine, round_number)`` every ``every_rounds`` rounds."""
        if every_rounds <= 0:
            raise ValueError(f"every_rounds must be positive, got {every_rounds}")
        self._hooks.append(
            _Hook(every_rounds=every_rounds, callback=callback, next_round=every_rounds)
        )

    def _fire_hooks(self) -> None:
        # The 1e-9 slack absorbs floating-point drift in the 1/n round
        # accumulation (n actions of 1/n can sum to fractionally under 1).
        for hook in self._hooks:
            while self.rounds_completed >= hook.next_round - 1e-9:
                hook.callback(self, hook.next_round)
                hook.next_round += hook.every_rounds
