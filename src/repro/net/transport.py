"""Transports: how a :class:`~repro.protocols.base.SendEffect` travels.

The protocol layer produces typed effects and never learns what happens
to them — exactly the paper's send-and-forget contract (section 5: after
sending, the node keeps no bookkeeping about the message).  A transport
owns the channel between the send seam and the receive seam:

* :class:`LoopbackTransport` — an in-memory FIFO channel with a
  :class:`~repro.net.loss.LossModel` applied at the send seam.  The
  simulation engines drive it synchronously; it exists to prove the seam
  (the same effects, routed differently, reproduce the engines'
  bit-identical runs).
* :class:`AsyncioUdpTransport` — a real UDP endpoint on localhost with
  the versioned wire codec (:mod:`repro.net.wire`), *receiver-side* drop
  injection (the datagram is read off the socket and then discarded with
  probability ``drop_rate``, like the related UDP daemons' drop knob),
  an inbound partition filter, and one-way latency sampling from the
  sender timestamp in the envelope.

Both keep delivery/drop counters so harnesses can assert conservation:
nothing leaves a transport unaccounted.
"""

from __future__ import annotations

import abc
import asyncio
import time
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.net.loss import LossModel, NoLoss
from repro.net.wire import WireError, WireRecord, decode_with_timestamp, encode
from repro.protocols.base import SendEffect
from repro.util.rng import make_rng

NodeId = int

#: Resolves a node id to a UDP address, or None if unknown/departed.
AddressResolver = Callable[[NodeId], Optional[Tuple[str, int]]]

#: Receives each surviving inbound record: ``(record, sender_ts, addr)``.
RecordHandler = Callable[[WireRecord, Optional[float], Tuple[str, int]], None]

#: Receiver-side admission check: return False to drop the record (used
#: for partition scenarios — a cross-partition datagram arrives at the
#: socket but never reaches the protocol).
InboundFilter = Callable[[WireRecord], bool]


class Transport(abc.ABC):
    """Carries effects produced at the event/effect seam.

    ``send`` returns True if the message entered the channel (delivery
    still not guaranteed — the receiver side may drop it), False if it
    was dropped at the send seam.  Senders must not branch on the result
    beyond accounting: the protocol never learns the outcome.
    """

    @abc.abstractmethod
    def send(self, effect: SendEffect, rng) -> bool:
        """Hand one effect to the channel."""


class LoopbackTransport(Transport):
    """Synchronous in-memory channel with loss applied at the send seam.

    Surviving effects queue in FIFO order; the driving engine drains them
    with :meth:`poll` and runs the receive step itself.  FIFO matters:
    for request/reply protocols it reproduces the exact RNG draw order of
    the pre-seam engines (request loss draw, receive draws, reply loss
    draw, reply receive draws), keeping seeded runs bit-identical.
    """

    def __init__(self, loss: Optional[LossModel] = None):
        self.loss = loss if loss is not None else NoLoss()
        self.sent = 0
        self.dropped = 0
        self._queue: Deque[SendEffect] = deque()

    def send(self, effect: SendEffect, rng) -> bool:
        self.sent += 1
        message = effect.message
        if self.loss.is_lost(message.sender, message.target, rng):
            self.dropped += 1
            return False
        self._queue.append(effect)
        return True

    def poll(self) -> Optional[SendEffect]:
        """Next queued effect in send order, or None when the channel is idle."""
        if self._queue:
            return self._queue.popleft()
        return None

    def pending(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return f"LoopbackTransport(loss={self.loss!r}, pending={len(self._queue)})"


class _DatagramBridge(asyncio.DatagramProtocol):
    """Socket-facing half of :class:`AsyncioUdpTransport`."""

    def __init__(self, owner: "AsyncioUdpTransport"):
        self._owner = owner

    def connection_made(self, transport) -> None:  # pragma: no cover - trivial
        self._owner._socket = transport

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self._owner._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:
        self._owner.socket_errors += 1


class AsyncioUdpTransport(Transport):
    """A UDP endpoint speaking the versioned wire format.

    Create with :meth:`create` (binds the socket on the running loop; port
    0 picks an ephemeral port, so hundreds of transports coexist on one
    host without coordination).  Outbound records are addressed through
    ``resolve`` (node id → address); inbound datagrams are decoded, run
    through the receiver-side drop draw and the partition filter, then
    handed to ``on_record``.

    Drop injection is deliberately *receiver-side*: the datagram really
    crosses the socket and is discarded after arrival, so the sender's
    code path is byte-for-byte the lossless one — matching both the
    paper's model (the sender cannot detect loss) and the related UDP
    daemons' drop knob.
    """

    def __init__(
        self,
        on_record: RecordHandler,
        *,
        drop_rate: float = 0.0,
        rng=None,
        resolve: Optional[AddressResolver] = None,
        inbound_filter: Optional[InboundFilter] = None,
        max_latency_samples: int = 100_000,
    ):
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
        self.on_record = on_record
        self.drop_rate = drop_rate
        self.rng = rng if rng is not None else make_rng(None)
        self.resolve = resolve
        self.inbound_filter = inbound_filter
        self._socket: Optional[asyncio.DatagramTransport] = None
        self._addr: Optional[Tuple[str, int]] = None
        # Conservation ledger: received == delivered + dropped + filtered
        # + decode_errors; sent == datagrams actually written + unroutable.
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.delivered = 0
        self.dropped = 0
        self.filtered = 0
        self.decode_errors = 0
        self.unroutable = 0
        self.socket_errors = 0
        self.max_latency_samples = max_latency_samples
        self.latency_samples: List[float] = []

    @classmethod
    async def create(
        cls,
        on_record: RecordHandler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        **kwargs,
    ) -> "AsyncioUdpTransport":
        """Bind a datagram endpoint and return the ready transport."""
        self = cls(on_record, **kwargs)
        loop = asyncio.get_running_loop()
        await loop.create_datagram_endpoint(
            lambda: _DatagramBridge(self), local_addr=(host, port)
        )
        assert self._socket is not None
        self._addr = self._socket.get_extra_info("sockname")[:2]
        return self

    # -- addressing -----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._addr is None:
            raise RuntimeError("transport is not bound; use AsyncioUdpTransport.create")
        return self._addr

    @property
    def port(self) -> int:
        return self.address[1]

    # -- outbound -------------------------------------------------------

    def send_record(
        self,
        record: WireRecord,
        addr: Tuple[str, int],
        timestamp: Optional[float] = None,
    ) -> None:
        """Encode and write one record to ``addr`` (fire and forget)."""
        if self._socket is None:
            raise RuntimeError("transport is not bound; use AsyncioUdpTransport.create")
        self._socket.sendto(encode(record, timestamp=timestamp), addr)
        self.datagrams_sent += 1

    def send(self, effect: SendEffect, rng) -> bool:
        """Seam entry point: route ``effect.message`` by target id."""
        if self.resolve is None:
            raise RuntimeError("send() needs a resolver; use send_record for raw sends")
        addr = self.resolve(effect.message.target)
        if addr is None:
            # Unknown/departed target: the datagram evaporates, which the
            # sender cannot distinguish from loss (the paper's leave model).
            self.unroutable += 1
            return False
        self.send_record(effect.message, addr, timestamp=time.monotonic())
        return True

    # -- inbound --------------------------------------------------------

    def _on_datagram(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.datagrams_received += 1
        try:
            record, timestamp = decode_with_timestamp(data)
        except WireError:
            self.decode_errors += 1
            return
        if self.drop_rate > 0.0 and float(self.rng.random()) < self.drop_rate:
            self.dropped += 1  # receiver-side injection: read, then discarded
            return
        if self.inbound_filter is not None and not self.inbound_filter(record):
            self.filtered += 1
            return
        if timestamp is not None:
            latency = time.monotonic() - timestamp
            if len(self.latency_samples) < self.max_latency_samples:
                self.latency_samples.append(latency)
        self.delivered += 1
        self.on_record(record, timestamp, addr)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def __repr__(self) -> str:
        where = self._addr if self._addr else "unbound"
        return (
            f"AsyncioUdpTransport({where}, drop={self.drop_rate}, "
            f"in={self.datagrams_received}, out={self.datagrams_sent})"
        )
