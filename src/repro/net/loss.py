"""Message-loss models.

The sender can never detect loss (section 4.1): these models are consulted
by the engine *after* the send step has completed, so a lost message means
the receive step silently never runs — no retransmission, no bookkeeping.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

NodeId = int


class LossModel(abc.ABC):
    """Decides, per message, whether it is lost in transit."""

    @abc.abstractmethod
    def is_lost(self, sender: NodeId, target: NodeId, rng) -> bool:
        """Return True if the message from ``sender`` to ``target`` is lost."""

    def rate_for(self, sender: NodeId, target: NodeId) -> Optional[float]:
        """The deterministic loss rate for this message, if one exists.

        Stateless models return the probability a message from ``sender``
        to ``target`` is lost, letting batch kernels decide loss from a
        pre-drawn uniform (see :func:`repro.kernel.base.decide_loss`).
        Stateful models (whose verdict needs extra randomness or evolves
        per message) return ``None`` to request the ``is_lost`` path.
        """
        return None

    def expected_rate(self) -> float:
        """A nominal overall loss rate, for reporting (may be approximate)."""
        return 0.0

    def reset(self) -> None:
        """Discard any accumulated per-run channel state.

        Stateless models are no-ops.  Stateful models (e.g.
        :class:`GilbertElliottLoss`) must override this so one model
        instance can be reused across replications without leaking state
        — :func:`repro.experiments.common.build_sf_system` calls it for
        every system it assembles.
        """


class UniformLoss(LossModel):
    """The paper's model: i.i.d. loss with probability ``rate`` per message."""

    def __init__(self, rate: float):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate

    def is_lost(self, sender: NodeId, target: NodeId, rng) -> bool:
        if self.rate == 0.0:
            return False
        if self.rate == 1.0:
            return True
        return bool(rng.random() < self.rate)

    def rate_for(self, sender: NodeId, target: NodeId) -> float:
        return self.rate

    def expected_rate(self) -> float:
        return self.rate

    def __repr__(self) -> str:
        return f"UniformLoss(rate={self.rate})"


class NoLoss(UniformLoss):
    """Lossless network (ℓ = 0) — the classical atomic-action setting."""

    def __init__(self) -> None:
        super().__init__(0.0)

    def __repr__(self) -> str:
        return "NoLoss()"


class GilbertElliottLoss(LossModel):
    """Bursty loss: a two-state (good/bad) Markov channel per sender.

    In the *good* state messages are lost with probability ``good_loss``
    (typically ~0); in the *bad* state with probability ``bad_loss``
    (typically high).  The channel flips state per message with the given
    transition probabilities.  This violates the paper's independence
    assumption and is used by robustness experiments only.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.3,
        good_loss: float = 0.0,
        bad_loss: float = 0.5,
    ):
        for name, value in [
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
        ]:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self._bad_state: Dict[NodeId, bool] = {}

    def is_lost(self, sender: NodeId, target: NodeId, rng) -> bool:
        bad = self._bad_state.get(sender, False)
        # Evolve the channel state first, then sample loss in the new state.
        if bad:
            if rng.random() < self.p_bad_to_good:
                bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                bad = True
        self._bad_state[sender] = bad
        loss_probability = self.bad_loss if bad else self.good_loss
        return bool(rng.random() < loss_probability)

    def expected_rate(self) -> float:
        """Stationary loss rate of the two-state channel."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0.0:
            return self.good_loss
        stationary_bad = self.p_good_to_bad / denom
        return stationary_bad * self.bad_loss + (1 - stationary_bad) * self.good_loss

    def reset(self) -> None:
        """Return every sender's channel to the good state.

        The per-sender ``_bad_state`` map otherwise accumulates entries
        (and burst state) for the lifetime of the instance — reusing one
        model across replications would correlate runs that are supposed
        to be independent and grow memory with every distinct sender.
        """
        self._bad_state.clear()

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(p_gb={self.p_good_to_bad}, "
            f"p_bg={self.p_bad_to_good}, good={self.good_loss}, bad={self.bad_loss})"
        )


class PartitionLoss(LossModel):
    """A network partition: messages crossing group boundaries are lost.

    While :attr:`active` is True, any message between nodes of different
    groups is lost with probability ``cross_loss`` (1.0 = a clean cut);
    intra-group messages see ``base_loss``.  Deactivate to heal the
    partition.  Used by the partition-recovery experiment: S&F tolerates
    partitions shorter than the id half-life (Lemma 6.10) because stale
    cross-partition ids are still in views when connectivity returns.
    """

    def __init__(
        self,
        group_of: Dict[NodeId, int],
        cross_loss: float = 1.0,
        base_loss: float = 0.0,
        default_group: int = 0,
    ):
        if not 0.0 <= cross_loss <= 1.0:
            raise ValueError(f"cross_loss must be in [0, 1], got {cross_loss}")
        if not 0.0 <= base_loss <= 1.0:
            raise ValueError(f"base_loss must be in [0, 1], got {base_loss}")
        self.group_of = dict(group_of)
        self.cross_loss = cross_loss
        self.base_loss = base_loss
        self.default_group = default_group
        self.active = True

    def heal(self) -> None:
        """End the partition: all traffic sees only ``base_loss``."""
        self.active = False

    def split(self) -> None:
        """(Re)activate the partition."""
        self.active = True

    def rate_for(self, sender: NodeId, target: NodeId) -> float:
        rate = self.base_loss
        if self.active:
            sender_group = self.group_of.get(sender, self.default_group)
            target_group = self.group_of.get(target, self.default_group)
            if sender_group != target_group:
                rate = self.cross_loss
        return rate

    def is_lost(self, sender: NodeId, target: NodeId, rng) -> bool:
        rate = self.rate_for(sender, target)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return bool(rng.random() < rate)

    def expected_rate(self) -> float:
        return self.base_loss  # nominal; cross traffic depends on topology

    def __repr__(self) -> str:
        state = "split" if self.active else "healed"
        return (
            f"PartitionLoss({len(set(self.group_of.values()))} groups, "
            f"{state}, cross={self.cross_loss}, base={self.base_loss})"
        )


class TargetedLoss(LossModel):
    """An adversary silencing a victim set: their traffic is dropped.

    Every message to *or* from a node in ``victims`` is lost with
    probability ``victim_loss`` (1.0 = total isolation — the targeted-edge
    adversary of the fault-tolerant rumor-spreading literature, cf. Doerr
    et al. in PAPERS.md); everything else sees ``base_loss``.  Unlike a
    crash, the victims keep *initiating* actions, so their views evolve
    while the rest of the system stops hearing from them — the regime a
    failure detector must not confuse with a clean leave.

    The verdict is a deterministic function of the endpoint pair, so
    :meth:`rate_for` exposes it and batch kernels decide it from the
    pre-drawn uniform (the fused fast path).  The model is stateless;
    :meth:`reset` is a no-op and one instance can be shared across
    replications.  :meth:`retarget` points the adversary at a new victim
    set mid-run (scenario scripting).
    """

    def __init__(self, victims, victim_loss: float = 1.0, base_loss: float = 0.0):
        if not 0.0 <= victim_loss <= 1.0:
            raise ValueError(f"victim_loss must be in [0, 1], got {victim_loss}")
        if not 0.0 <= base_loss <= 1.0:
            raise ValueError(f"base_loss must be in [0, 1], got {base_loss}")
        self.victims = frozenset(int(v) for v in victims)
        self.victim_loss = victim_loss
        self.base_loss = base_loss

    def retarget(self, victims) -> None:
        """Point the adversary at a new victim set."""
        self.victims = frozenset(int(v) for v in victims)

    def rate_for(self, sender: NodeId, target: NodeId) -> float:
        if sender in self.victims or target in self.victims:
            return self.victim_loss
        return self.base_loss

    def is_lost(self, sender: NodeId, target: NodeId, rng) -> bool:
        rate = self.rate_for(sender, target)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return bool(rng.random() < rate)

    def expected_rate(self) -> float:
        return self.base_loss  # nominal; victim traffic depends on topology

    def __repr__(self) -> str:
        return (
            f"TargetedLoss({len(self.victims)} victims, "
            f"victim={self.victim_loss}, base={self.base_loss})"
        )


class CorrelatedLoss(LossModel):
    """Round-synchronized burst drops: loss arrives in system-wide waves.

    Messages are counted globally in send order; the counter position
    within a cycle of ``period`` messages decides the regime: the first
    ``burst`` messages of every cycle are lost with probability
    ``burst_loss``, the rest with ``base_loss``.  With ``period`` set to
    roughly the per-round message volume (≈ the population size for
    S&F), every burst hits the whole population within the same round —
    the spatially correlated outage the paper's i.i.d. model excludes.

    The verdict depends on evolving per-message state, so
    :meth:`rate_for` returns ``None`` and kernels route it through the
    in-order ``is_lost`` path (same discipline as
    :class:`GilbertElliottLoss`, and held bit-exact across kernels by the
    same equivalence suite).  :meth:`reset` rewinds the counter so a
    reused instance starts every replication at the cycle origin.
    """

    def __init__(
        self,
        period: int,
        burst: int,
        burst_loss: float = 1.0,
        base_loss: float = 0.0,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0 <= burst <= period:
            raise ValueError(f"burst must be in [0, period], got {burst}")
        if not 0.0 <= burst_loss <= 1.0:
            raise ValueError(f"burst_loss must be in [0, 1], got {burst_loss}")
        if not 0.0 <= base_loss <= 1.0:
            raise ValueError(f"base_loss must be in [0, 1], got {base_loss}")
        self.period = period
        self.burst = burst
        self.burst_loss = burst_loss
        self.base_loss = base_loss
        self._messages = 0

    def is_lost(self, sender: NodeId, target: NodeId, rng) -> bool:
        in_burst = (self._messages % self.period) < self.burst
        self._messages += 1
        rate = self.burst_loss if in_burst else self.base_loss
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return bool(rng.random() < rate)

    def expected_rate(self) -> float:
        fraction = self.burst / self.period
        return fraction * self.burst_loss + (1 - fraction) * self.base_loss

    def reset(self) -> None:
        """Rewind to the cycle origin (per-run burst-phase isolation)."""
        self._messages = 0

    def __repr__(self) -> str:
        return (
            f"CorrelatedLoss(period={self.period}, burst={self.burst}, "
            f"burst_loss={self.burst_loss}, base={self.base_loss})"
        )


class TopologyLoss(LossModel):
    """Topology-constrained gossip: only mask edges can carry messages.

    ``neighbors`` maps each node to the peers it is allowed to reach;
    messages along permitted edges see ``edge_loss``, everything else is
    dropped outright.  This is the constrained-admission regime of Hu &
    Jehl (PAPERS.md): gossip no longer runs over a complete graph, so
    reliability depends on the mask's expansion.  ``symmetric`` (default)
    admits an edge when either endpoint lists the other, matching an
    undirected topology given one-sided adjacency lists.

    Stateless and precomputable per pair (:meth:`rate_for`), so batch
    kernels take the fused path; :meth:`reset` is a no-op.
    """

    def __init__(
        self,
        neighbors: Dict[NodeId, frozenset],
        edge_loss: float = 0.0,
        symmetric: bool = True,
    ):
        if not 0.0 <= edge_loss <= 1.0:
            raise ValueError(f"edge_loss must be in [0, 1], got {edge_loss}")
        self.neighbors = {int(u): frozenset(vs) for u, vs in neighbors.items()}
        self.edge_loss = edge_loss
        self.symmetric = symmetric

    def _admits(self, sender: NodeId, target: NodeId) -> bool:
        if target in self.neighbors.get(sender, frozenset()):
            return True
        if self.symmetric and sender in self.neighbors.get(target, frozenset()):
            return True
        return False

    def rate_for(self, sender: NodeId, target: NodeId) -> float:
        if self._admits(sender, target):
            return self.edge_loss
        return 1.0

    def is_lost(self, sender: NodeId, target: NodeId, rng) -> bool:
        rate = self.rate_for(sender, target)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return bool(rng.random() < rate)

    def expected_rate(self) -> float:
        return self.edge_loss  # nominal; off-mask traffic depends on views

    def __repr__(self) -> str:
        edges = sum(len(vs) for vs in self.neighbors.values())
        return (
            f"TopologyLoss({len(self.neighbors)} nodes, {edges} adjacency "
            f"entries, edge_loss={self.edge_loss})"
        )


class PerLinkLoss(LossModel):
    """Heterogeneous loss: a fixed rate per (sender, target) pair.

    Pairs not in ``rates`` use ``default_rate``.  Models persistently lossy
    links (e.g. a badly connected region), a nonuniform regime the paper
    explicitly leaves out of scope (§4.1) but which the robustness benches
    exercise.
    """

    def __init__(self, rates: Dict[Tuple[NodeId, NodeId], float], default_rate: float = 0.0):
        for pair, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"loss rate for {pair} must be in [0, 1], got {rate}")
        if not 0.0 <= default_rate <= 1.0:
            raise ValueError(f"default_rate must be in [0, 1], got {default_rate}")
        self.rates = dict(rates)
        self.default_rate = default_rate

    def rate_for(self, sender: NodeId, target: NodeId) -> float:
        return self.rates.get((sender, target), self.default_rate)

    def is_lost(self, sender: NodeId, target: NodeId, rng) -> bool:
        return bool(rng.random() < self.rate_for(sender, target))

    def expected_rate(self) -> float:
        if not self.rates:
            return self.default_rate
        return sum(self.rates.values()) / len(self.rates)

    def __repr__(self) -> str:
        return f"PerLinkLoss({len(self.rates)} links, default={self.default_rate})"
