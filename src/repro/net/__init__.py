"""Network substrate: loss and delay models, wire codec, transports.

The paper analyzes uniform i.i.d. loss (each message independently lost
with probability ℓ, section 4.1).  :class:`UniformLoss` implements exactly
that.  Real networks also exhibit bursty and link-dependent loss; the
Gilbert–Elliott and per-link models are provided so experiments can probe
robustness beyond the paper's model (its section 8 future work).

:mod:`repro.net.transport` carries the messages themselves: the engines'
in-memory :class:`LoopbackTransport` (loss model applied at the seam) and
the runtime's :class:`AsyncioUdpTransport` speaking the schema-versioned
datagram format of :mod:`repro.net.wire`.
"""

from repro.net.delay import ConstantDelay, DelayModel, ExponentialDelay, UniformDelay
from repro.net.loss import (
    CorrelatedLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    PerLinkLoss,
    TargetedLoss,
    TopologyLoss,
    UniformLoss,
)
from repro.net.transport import AsyncioUdpTransport, LoopbackTransport, Transport
from repro.net.wire import (
    WIRE_SCHEMA_VERSION,
    JoinRequest,
    Welcome,
    WireError,
    decode,
    decode_with_timestamp,
    encode,
)

__all__ = [
    "LossModel",
    "NoLoss",
    "UniformLoss",
    "GilbertElliottLoss",
    "PerLinkLoss",
    "TargetedLoss",
    "CorrelatedLoss",
    "TopologyLoss",
    "DelayModel",
    "ConstantDelay",
    "ExponentialDelay",
    "UniformDelay",
    "Transport",
    "LoopbackTransport",
    "AsyncioUdpTransport",
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "JoinRequest",
    "Welcome",
    "encode",
    "decode",
    "decode_with_timestamp",
]
