"""Network substrate: message loss and delay models.

The paper analyzes uniform i.i.d. loss (each message independently lost
with probability ℓ, section 4.1).  :class:`UniformLoss` implements exactly
that.  Real networks also exhibit bursty and link-dependent loss; the
Gilbert–Elliott and per-link models are provided so experiments can probe
robustness beyond the paper's model (its section 8 future work).
"""

from repro.net.delay import ConstantDelay, DelayModel, ExponentialDelay, UniformDelay
from repro.net.loss import (
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    PerLinkLoss,
    UniformLoss,
)

__all__ = [
    "LossModel",
    "NoLoss",
    "UniformLoss",
    "GilbertElliottLoss",
    "PerLinkLoss",
    "DelayModel",
    "ConstantDelay",
    "ExponentialDelay",
    "UniformDelay",
]
