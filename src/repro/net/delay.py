"""Message-delay models for the discrete-event engine.

The paper's analysis serializes actions; the discrete-event engine uses
these delay models to let actions overlap in time, demonstrating that S&F
needs no atomicity (its design rationale in section 5).
"""

from __future__ import annotations

import abc

NodeId = int


class DelayModel(abc.ABC):
    """Samples an in-flight latency for each message."""

    @abc.abstractmethod
    def sample(self, sender: NodeId, target: NodeId, rng) -> float:
        """Return a nonnegative delay for a message from sender to target."""


class ConstantDelay(DelayModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0):
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        self.delay = delay

    def sample(self, sender: NodeId, target: NodeId, rng) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantDelay({self.delay})"


class ExponentialDelay(DelayModel):
    """Memoryless latency with the given mean — heavy overlap of actions."""

    def __init__(self, mean: float = 1.0):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self.mean = mean

    def sample(self, sender: NodeId, target: NodeId, rng) -> float:
        return float(rng.exponential(self.mean))

    def __repr__(self) -> str:
        return f"ExponentialDelay(mean={self.mean})"


class UniformDelay(DelayModel):
    """Latency uniform in ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5):
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, sender: NodeId, target: NodeId, rng) -> float:
        return float(rng.uniform(self.low, self.high))

    def __repr__(self) -> str:
        return f"UniformDelay([{self.low}, {self.high}])"
