"""Schema-versioned wire codec for protocol and runtime control records.

Every datagram the UDP runtime puts on the wire is a compact JSON object
with two envelope fields:

* ``v`` — :data:`WIRE_SCHEMA_VERSION`, checked on decode so incompatible
  peers fail loudly instead of corrupting views;
* ``t`` — a short tag selecting the record type.

The protocol payload is the paper's ``[u, w]`` message (section 5): the
sender's own id and the forwarded id, each with its dependence flag.  The
runtime adds two control records for introducer-based join (the shape used
by the UDP gossip-membership daemons in the related work): a
:class:`JoinRequest` announcing a node's listening port, answered by a
:class:`Welcome` carrying bootstrap ids and the address book.

An optional ``ts`` envelope field carries the sender's wall-clock send
time so receivers can sample one-way delivery latency (the transport
benchmark's p50/p99).  ``ts`` is transport metadata, not record state:
:func:`decode` ignores it, :func:`decode_with_timestamp` surfaces it.

The codec also covers the typed event/effect records of the execution
seam (:class:`~repro.protocols.base.InitiateEvent` and friends) so any
record crossing a process boundary — pickled into a sweep checkpoint or
serialized onto a socket — round-trips through one versioned format.
Round-tripping is property-tested with Hypothesis in
``tests/test_net_wire.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.protocols.base import (
    DATACLASS_SLOTS,
    DeliverEvent,
    InitiateEvent,
    Message,
    SendEffect,
)

NodeId = int

#: Bump on any incompatible change to the datagram layout.  Decoders
#: reject other versions outright — a half-understood membership message
#: could silently corrupt a view, which is worse than dropping it (drops
#: are the one failure S&F is designed for).
WIRE_SCHEMA_VERSION = 1

#: Practical payload ceiling for a localhost UDP datagram (IPv4 65535
#: minus IP/UDP headers).  An S&F message is ~100 bytes; a Welcome for a
#: 1000-node cluster is ~20 KiB — both comfortably under it.
MAX_DATAGRAM = 65507


class WireError(ValueError):
    """A datagram that cannot be decoded: bad JSON, version, tag, or shape."""


@dataclass(**DATACLASS_SLOTS)
class JoinRequest:
    """A joiner announces itself to the introducer.

    ``port`` is where the joiner listens; the introducer records it in the
    address book so existing nodes can route messages to the new id.
    """

    node: NodeId
    port: int


@dataclass(**DATACLASS_SLOTS)
class Welcome:
    """The introducer's answer to a :class:`JoinRequest`.

    ``bootstrap`` is the joiner's initial view contents (at least ``dL``
    live ids, even count — Observation 5.1's join precondition) and
    ``address_book`` maps node ids to UDP ports on the cluster host.
    """

    node: NodeId
    bootstrap: List[NodeId] = field(default_factory=list)
    address_book: Dict[NodeId, int] = field(default_factory=dict)


#: Everything the codec can carry.
WireRecord = Union[Message, InitiateEvent, DeliverEvent, SendEffect, JoinRequest, Welcome]

_TAG_MESSAGE = "msg"
_TAG_INITIATE = "init"
_TAG_DELIVER = "dlvr"
_TAG_SEND = "send"
_TAG_JOIN = "join"
_TAG_WELCOME = "wlcm"


def _message_body(message: Message) -> Dict[str, Any]:
    body = {
        "s": int(message.sender),
        "d": int(message.target),
        "k": message.kind,
        "p": [[int(node_id), 1 if dep else 0] for node_id, dep in message.payload],
    }
    # The extension envelope is strictly additive: absent extensions
    # produce the exact pre-extension bytes, so extension-free peers and
    # replays stay bit-identical on the wire.  Each extension key maps to
    # a JSON object that carries its own version field (e.g. the failure
    # detector's liveness gossip, repro.failure.detector.FD_WIRE_VERSION).
    if message.ext:
        body["x"] = {
            str(key): dict(value) for key, value in message.ext.items()
        }
    return body


def _message_from_body(body: Any) -> Message:
    if not isinstance(body, dict):
        raise WireError(f"malformed message body: {body!r}")
    try:
        ext = body.get("x")
        if ext is not None:
            if not isinstance(ext, dict) or not all(
                isinstance(value, dict) for value in ext.values()
            ):
                raise WireError(f"malformed extension envelope: {ext!r}")
            ext = {str(key): dict(value) for key, value in ext.items()}
        return Message(
            sender=int(body["s"]),
            target=int(body["d"]),
            payload=[(int(v), bool(f)) for v, f in body["p"]],
            kind=str(body["k"]),
            ext=ext,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed message body: {body!r}") from exc


def encode(record: WireRecord, timestamp: Optional[float] = None) -> bytes:
    """Serialize ``record`` into one versioned datagram.

    ``timestamp`` (sender wall-clock seconds) rides in the envelope for
    latency sampling; it is not part of the record and does not affect
    round-trip equality.
    """
    obj: Dict[str, Any]
    if isinstance(record, Message):
        obj = {"t": _TAG_MESSAGE, "m": _message_body(record)}
    elif isinstance(record, InitiateEvent):
        obj = {"t": _TAG_INITIATE, "n": int(record.node)}
    elif isinstance(record, DeliverEvent):
        obj = {"t": _TAG_DELIVER, "m": _message_body(record.message)}
    elif isinstance(record, SendEffect):
        obj = {
            "t": _TAG_SEND,
            "m": _message_body(record.message),
            "r": 1 if record.reply else 0,
        }
    elif isinstance(record, JoinRequest):
        obj = {"t": _TAG_JOIN, "n": int(record.node), "port": int(record.port)}
    elif isinstance(record, Welcome):
        obj = {
            "t": _TAG_WELCOME,
            "n": int(record.node),
            "b": [int(v) for v in record.bootstrap],
            "a": {str(int(k)): int(p) for k, p in record.address_book.items()},
        }
    else:
        raise WireError(f"cannot encode record of type {type(record).__name__}")
    obj["v"] = WIRE_SCHEMA_VERSION
    if timestamp is not None:
        obj["ts"] = timestamp
    data = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_DATAGRAM:
        raise WireError(f"record encodes to {len(data)} bytes > {MAX_DATAGRAM}")
    return data


def decode_with_timestamp(data: bytes) -> Tuple[WireRecord, Optional[float]]:
    """Decode one datagram; return ``(record, sender_timestamp_or_None)``."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable datagram ({len(data)} bytes)") from exc
    if not isinstance(obj, dict):
        raise WireError(f"datagram is not an object: {obj!r}")
    version = obj.get("v")
    if version != WIRE_SCHEMA_VERSION:
        raise WireError(
            f"wire schema version mismatch: got {version!r}, "
            f"speak {WIRE_SCHEMA_VERSION}"
        )
    tag = obj.get("t")
    timestamp = obj.get("ts")
    if timestamp is not None and not isinstance(timestamp, (int, float)):
        raise WireError(f"non-numeric ts field: {timestamp!r}")
    try:
        if tag == _TAG_MESSAGE:
            return _message_from_body(obj["m"]), timestamp
        if tag == _TAG_INITIATE:
            return InitiateEvent(node=int(obj["n"])), timestamp
        if tag == _TAG_DELIVER:
            return DeliverEvent(message=_message_from_body(obj["m"])), timestamp
        if tag == _TAG_SEND:
            return (
                SendEffect(message=_message_from_body(obj["m"]), reply=bool(obj["r"])),
                timestamp,
            )
        if tag == _TAG_JOIN:
            return JoinRequest(node=int(obj["n"]), port=int(obj["port"])), timestamp
        if tag == _TAG_WELCOME:
            return (
                Welcome(
                    node=int(obj["n"]),
                    bootstrap=[int(v) for v in obj["b"]],
                    address_book={int(k): int(p) for k, p in obj["a"].items()},
                ),
                timestamp,
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed {tag!r} datagram") from exc
    raise WireError(f"unknown wire tag: {tag!r}")


def decode(data: bytes) -> WireRecord:
    """Decode one datagram, discarding the latency timestamp if present."""
    record, _ = decode_with_timestamp(data)
    return record
