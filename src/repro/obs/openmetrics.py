"""OpenMetrics text exposition of :class:`repro.obs.Registry` snapshots.

Two pieces, both stdlib-only:

* :func:`render_openmetrics` — turn any registry (or a snapshot dict
  produced by :meth:`~repro.obs.Registry.snapshot`) into the
  Prometheus/OpenMetrics text exposition format: counters as
  ``<name>_total``, gauges verbatim, histograms/timers as a single
  ``+Inf`` bucket plus ``_sum``/``_count`` (this registry keeps
  count/total/min/max, not bucket boundaries — the ``le="+Inf"`` bucket
  is the faithful encoding of that) with ``_min``/``_max`` surfaced as
  auxiliary gauges and timer CPU totals as a ``_cpu_seconds`` counter.
  Output is deterministic: metrics sorted by name, values via
  ``repr``-stable formatting, terminated by the ``# EOF`` marker the
  OpenMetrics spec requires.
* :class:`MetricsEndpoint` — a daemon-threaded
  :class:`~http.server.ThreadingHTTPServer` serving ``GET /metrics``
  (the exposition above, scrape-ready for Prometheus) and
  ``GET /progress`` (a JSON view of live sweep progress, e.g.
  :meth:`repro.runner.SweepRunner.progress_snapshot`).  Both read shared
  state that writers mutate one scalar at a time, so a scrape is only
  ever momentarily stale — it can never tear a value or perturb the
  sweep (no locks are taken on the hot path).

Metric names pass through :func:`sanitize_name`: every character outside
``[a-zA-Z0-9_:]`` becomes ``_``, so registry names like
``sweep.completed`` expose as ``repro_sweep_completed_total``.
"""

from __future__ import annotations

import json
import logging
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Union

from repro.obs.metrics import Registry

LOGGER = logging.getLogger("repro.obs.openmetrics")

#: Content type the OpenMetrics spec mandates for text exposition.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str, prefix: str = "") -> str:
    """A legal OpenMetrics metric name for a registry instrument name."""
    full = f"{prefix}_{name}" if prefix else name
    full = _NAME_BAD_CHARS.sub("_", full)
    if not _NAME_OK.match(full):
        full = f"_{full}"
    return full


def _format_value(value: Union[int, float]) -> str:
    """Exposition-format number: integers bare, floats via ``repr``."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value)}.0"
    return repr(value)


def _histogram_lines(
    lines: list, name: str, stat: Dict[str, Any]
) -> None:
    count = int(stat.get("count", 0))
    total = float(stat.get("total", 0.0))
    lines.append(f"# TYPE {name} histogram")
    lines.append(f'{name}_bucket{{le="+Inf"}} {count}')
    lines.append(f"{name}_sum {_format_value(total)}")
    lines.append(f"{name}_count {count}")
    for bound in ("min", "max"):
        value = stat.get(bound)
        if value is None:
            continue
        lines.append(f"# TYPE {name}_{bound} gauge")
        lines.append(f"{name}_{bound} {_format_value(float(value))}")


def render_openmetrics(
    source: Union[Registry, Dict[str, Any]], prefix: str = "repro"
) -> str:
    """The OpenMetrics text exposition of a registry or snapshot dict.

    ``source`` may be a live :class:`~repro.obs.Registry` (snapshotted
    here) or an already-taken snapshot.  ``prefix`` namespaces every
    metric (pass ``""`` for none).  The result always ends with the
    spec's ``# EOF`` terminator.
    """
    snapshot = source.snapshot() if isinstance(source, Registry) else source
    lines: list = []
    schema = snapshot.get("schema_version")
    if schema is not None:
        name = sanitize_name("metrics_schema_version", prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(int(schema))}")
    for raw, value in sorted(snapshot.get("counters", {}).items()):
        name = sanitize_name(raw, prefix)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}_total {_format_value(value)}")
    for raw, value in sorted(snapshot.get("gauges", {}).items()):
        name = sanitize_name(raw, prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(float(value))}")
    for raw, stat in sorted(snapshot.get("histograms", {}).items()):
        _histogram_lines(lines, sanitize_name(raw, prefix), stat)
    for raw, stat in sorted(snapshot.get("timers", {}).items()):
        name = sanitize_name(f"{raw}_seconds", prefix)
        _histogram_lines(lines, name, stat)
        cpu = sanitize_name(f"{raw}_cpu_seconds", prefix)
        lines.append(f"# TYPE {cpu} counter")
        lines.append(f"{cpu}_total {_format_value(float(stat.get('cpu_total', 0.0)))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`MetricsEndpoint`."""

    server: "_Server"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        endpoint = self.server.endpoint
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = endpoint.render_metrics().encode("utf-8")
            self._reply(200, CONTENT_TYPE, body)
        elif path == "/progress":
            body = json.dumps(
                endpoint.render_progress(), sort_keys=True
            ).encode("utf-8")
            self._reply(200, "application/json; charset=utf-8", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        LOGGER.debug("metrics endpoint: " + format, *args)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    endpoint: "MetricsEndpoint"


class MetricsEndpoint:
    """Live ``/metrics`` + ``/progress`` HTTP endpoint for a running sweep.

    Args:
        registry: the :class:`~repro.obs.Registry` to expose at
            ``/metrics`` (``None`` exposes an empty exposition).
        progress: zero-argument callable returning a JSON-serializable
            dict for ``/progress`` (e.g. a bound
            :meth:`~repro.runner.SweepRunner.progress_snapshot`);
            ``None`` serves ``{}``.
        port: TCP port to bind; ``0`` picks a free one (see
            :attr:`port` after :meth:`start`).
        host: bind address; loopback by default — this is an operator
            diagnostic, not an internet-facing service.
        prefix: metric-name prefix for the exposition.

    The server runs entirely in daemon threads: an abandoned endpoint
    never blocks interpreter shutdown, but call :meth:`stop` for a tidy
    exit.  Usable as a context manager.
    """

    def __init__(
        self,
        registry: Optional[Registry] = None,
        progress: Optional[Callable[[], Dict[str, Any]]] = None,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        prefix: str = "repro",
    ):
        self.registry = registry
        self.progress = progress
        self.host = host
        self.prefix = prefix
        self._requested_port = int(port)
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        """The bound port (``None`` before :meth:`start`)."""
        return self._server.server_address[1] if self._server else None

    def render_metrics(self) -> str:
        if self.registry is None:
            return "# EOF\n"
        return render_openmetrics(self.registry, prefix=self.prefix)

    def render_progress(self) -> Dict[str, Any]:
        if self.progress is None:
            return {}
        try:
            return self.progress()
        except Exception:
            LOGGER.warning("/progress callback raised", exc_info=True)
            return {"error": "progress callback raised"}

    def start(self) -> int:
        """Bind and serve in a background thread; returns the bound port."""
        if self._server is not None:
            return self.port  # type: ignore[return-value]
        server = _Server((self.host, self._requested_port), _Handler)
        server.endpoint = self
        thread = threading.Thread(
            target=server.serve_forever,
            name="repro-metrics-endpoint",
            daemon=True,
        )
        thread.start()
        self._server = server
        self._thread = thread
        LOGGER.info(
            "metrics endpoint listening on http://%s:%d (/metrics, /progress)",
            self.host, self.port,
        )
        return self.port  # type: ignore[return-value]

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsEndpoint":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
