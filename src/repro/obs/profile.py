"""Lightweight per-phase profiling hooks.

:func:`phase` brackets a named stage of work with wall-clock and CPU
timers, recording into the process-current telemetry:

* a ``phase.<name>`` timer in the metrics registry (count, wall
  total/min/max, CPU total);
* a ``phase`` trace record (``name``, ``duration_s``, ``cpu_s``).

The instrumented stages across the stack are:

==============  ======================================================
``grid_build``  an experiment's ``grid(fast)`` call (registry)
``cell_run``    one sweep cell's worker execution (inline and pooled)
``aggregate``   an experiment's ``aggregate(points, records)`` call
``kernel_batch``  one ``SimulationKernel.run_batch`` (engine-side)
==============  ======================================================

``phase`` records always carry exactly the same field set, so the golden
trace-schema test can pin them; stage identity lives in the ``name``
field, never in extra fields.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs import get_telemetry


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Profile the enclosed block as phase ``name`` (no-op when disabled)."""
    tel = get_telemetry()
    if not tel.active:
        yield
        return
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        yield
    finally:
        wall = time.perf_counter() - wall0
        cpu = time.process_time() - cpu0
        tel.observe_timer(f"phase.{name}", wall, cpu)
        tel.event(
            "phase", name=name, duration_s=round(wall, 6), cpu_s=round(cpu, 6)
        )
