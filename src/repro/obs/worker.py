"""Cross-process metric capture for sweep workers.

A :class:`repro.runner.SweepRunner` pool runs cells in worker processes,
where the parent's registry is unreachable (and the parent's tracer
deliberately refuses writes from other PIDs).  :class:`MeteredWorker`
closes the gap:

* in the worker process it installs a fresh metrics-only telemetry,
  profiles the cell (``phase.cell_run``), runs the wrapped worker, and
  returns a :class:`MeteredResult` — the real result plus the worker
  registry's snapshot;
* parent-side, the sweep runner unwraps the value before any result
  handling (ordering, checkpoint journaling, progress hooks see the
  plain result, exactly as without metering) and merges the snapshots
  into its registry **in cell-index order**, so the aggregated metrics
  are deterministic at any ``jobs``.

The wrapper advertises the wrapped worker's checkpoint token, so a sweep
journaled without telemetry resumes under telemetry (and vice versa)
with full cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.obs import Registry, Telemetry, activated
from repro.obs.profile import phase


@dataclass
class MeteredResult:
    """A worker's return value plus its process-local metrics snapshot."""

    value: Any
    metrics: Dict[str, Any]


class MeteredWorker:
    """Picklable wrapper running a sweep worker under fresh telemetry."""

    def __init__(self, worker: Any):
        from repro.runner.checkpoint import worker_token

        self.worker = worker
        # Same journal identity as the bare worker: metering changes how a
        # cell runs, never what it computes.
        self.checkpoint_token = worker_token(worker)

    def __call__(self, cell: Any, context: Any) -> MeteredResult:
        registry = Registry()
        with activated(Telemetry(registry=registry)):
            with phase("cell_run"):
                value = self.worker(cell, context)
        return MeteredResult(value=value, metrics=registry.snapshot())
