"""Structured telemetry: metrics, tracing, and profiling hooks.

The ``obs`` package gives every layer of the stack — engines, kernels,
the sweep runner, the solve cache, the experiment registry, and the CLI
— one shared, zero-cost-when-disabled instrumentation surface:

* :class:`repro.obs.metrics.Registry` — counters, gauges, histograms,
  and wall/CPU timers with deterministic cross-process aggregation;
* :class:`repro.obs.trace.Tracer` — schema-versioned JSONL span/event
  records (``--trace``);
* :func:`repro.obs.profile.phase` — per-phase wall/CPU profiling hooks;
* :class:`repro.obs.worker.MeteredWorker` — captures worker-process
  metrics in :class:`repro.runner.SweepRunner` pools and ships them back
  for a deterministic merge;
* :func:`repro.obs.openmetrics.render_openmetrics` /
  :class:`repro.obs.openmetrics.MetricsEndpoint` — Prometheus/OpenMetrics
  text exposition of any registry and a stdlib HTTP thread serving live
  ``/metrics`` + ``/progress`` during a sweep (``--metrics-port``).

Instrumented code never holds a tracer or registry directly; it asks for
the process-current :class:`Telemetry` via :func:`get_telemetry` and
guards with ``tel.active``.  The default telemetry is **disabled**: every
recording method is a no-op, the guard is a single attribute check, and
— crucially for this repository — nothing here ever draws randomness, so
enabling telemetry cannot perturb a seeded simulation.  Bit-identical
output with telemetry on or off is an acceptance criterion, not an
accident.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    HistogramStat,
    Registry,
    TimerStat,
)
from repro.obs.openmetrics import MetricsEndpoint, render_openmetrics
from repro.obs.trace import TRACE_SCHEMA_VERSION, Tracer

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "HistogramStat",
    "MetricsEndpoint",
    "Registry",
    "Telemetry",
    "TimerStat",
    "Tracer",
    "activated",
    "configure",
    "get_telemetry",
    "render_openmetrics",
    "reset",
    "set_telemetry",
]


class Telemetry:
    """The bundle instrumented code talks to: a registry and/or a tracer.

    Either half may be ``None`` (off).  All recording methods are no-ops
    for a missing half, so call sites need at most one ``tel.active``
    guard around any block that does real measurement work (clock reads,
    field formatting); bare counter bumps can just call :meth:`inc`.
    """

    __slots__ = ("registry", "tracer")

    def __init__(
        self,
        registry: Optional[Registry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.registry = registry
        self.tracer = tracer

    # -- state ----------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any instrument is attached (the hot-path guard)."""
        return self.registry is not None or self.tracer is not None

    @property
    def metrics_on(self) -> bool:
        return self.registry is not None

    @property
    def tracing_on(self) -> bool:
        return self.tracer is not None

    # -- metrics passthroughs ------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        if self.registry is not None:
            self.registry.inc(name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.observe(name, value)

    def observe_timer(self, name: str, wall: float, cpu: float = 0.0) -> None:
        if self.registry is not None:
            self.registry.observe_timer(name, wall, cpu)

    # -- trace passthroughs --------------------------------------------

    def event(self, type_: str, **fields: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(type_, **fields)

    @contextmanager
    def span(self, type_: str, **fields: Any) -> Iterator[None]:
        """Timed block → one trace record with ``duration_s`` (and the
        wall time recorded as timer ``type_`` when metrics are on)."""
        if not self.active:
            yield
            return
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - wall0
            self.observe_timer(type_, wall, time.process_time() - cpu0)
            self.event(type_, duration_s=round(wall, 6), **fields)


#: The do-nothing default every process starts with.
_DISABLED = Telemetry()
_CURRENT: Telemetry = _DISABLED


def get_telemetry() -> Telemetry:
    """The process-current telemetry (disabled unless configured)."""
    return _CURRENT


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as process-current; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry
    return previous


def configure(
    metrics: bool = False,
    trace_path: Optional[Union[str, Path]] = None,
    registry: Optional[Registry] = None,
    tracer: Optional[Tracer] = None,
) -> Telemetry:
    """Build and install a telemetry from flags (the CLI entry point).

    ``registry``/``tracer`` override the flag-driven construction when a
    caller wants to share instruments across several configure calls
    (e.g. ``repro report`` keeps one tracer but a fresh registry per
    experiment).
    """
    if registry is None and metrics:
        registry = Registry()
    if tracer is None and trace_path is not None:
        tracer = Tracer(trace_path)
    telemetry = Telemetry(registry=registry, tracer=tracer)
    set_telemetry(telemetry)
    return telemetry


def reset(close_tracer: bool = True) -> None:
    """Restore the disabled default (closing the tracer by default)."""
    global _CURRENT
    if close_tracer and _CURRENT.tracer is not None:
        _CURRENT.tracer.close()
    _CURRENT = _DISABLED


@contextmanager
def activated(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Temporarily install ``telemetry`` (tests and worker capture)."""
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
