"""Schema-versioned JSONL event/span tracing.

A :class:`Tracer` appends one JSON object per line to a trace file.
Every record carries the same envelope::

    {"schema": 1, "ts": <unix seconds>, "type": "<record type>", ...}

plus record-specific fields.  Record *types* are a stable, documented
vocabulary (see ``docs/observability.md``); ``tests/test_trace_schema.py``
pins the (type → field set) mapping of a fixed-seed run against a
checked-in snapshot, so trace-format drift fails CI instead of silently
breaking downstream consumers.

Span records are events with a ``duration_s`` field, emitted once when
the span closes — there is no open/close pairing to reassemble, which
keeps single-line consumers (``jq``, ``grep``) trivial.

Fork safety: worker processes forked from a tracing parent inherit the
open file descriptor.  The tracer records its owning PID and silently
drops writes from any other process, so a trace file is written by
exactly one process and never interleaves.  Worker telemetry travels as
metric snapshots through the sweep runner instead (see
:mod:`repro.obs.worker`).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Union

#: Bump whenever the record envelope or an existing record type's fields
#: change shape; every record embeds it.
TRACE_SCHEMA_VERSION = 2


class Tracer:
    """Append-only JSONL trace writer owned by a single process.

    Args:
        path: trace file location (parent directories are created).
            Opened immediately; a ``trace.meta`` record is written first
            so even an otherwise-empty trace identifies its schema.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._file = open(self.path, "w", encoding="utf-8")
        self.records_written = 0
        self.emit("trace.meta", pid=self._pid)

    def emit(self, type_: str, **fields: Any) -> None:
        """Write one event record; silently dropped in forked children."""
        if os.getpid() != self._pid:
            return
        record: Dict[str, Any] = {
            "schema": TRACE_SCHEMA_VERSION,
            "ts": round(time.time(), 6),
            "type": type_,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=_jsonable)
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")
            self.records_written += 1

    @contextmanager
    def span(self, type_: str, **fields: Any) -> Iterator[None]:
        """Emit one record for the enclosed block, with ``duration_s``."""
        wall0 = time.perf_counter()
        try:
            yield
        finally:
            self.emit(
                type_, duration_s=round(time.perf_counter() - wall0, 6), **fields
            )

    def flush(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


def _jsonable(value: Any) -> Any:
    """Last-resort encoder: numpy scalars become numbers, the rest repr."""
    item = getattr(value, "item", None)
    if item is not None:
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return repr(value)
