"""Metrics primitives: counters, gauges, histograms, and timers.

A :class:`Registry` is a flat, named collection of four instrument
kinds:

* **counters** — monotonically increasing integers (``engine.actions``,
  ``solve_cache.misses``);
* **gauges** — last-written floats (``des.max_in_flight``);
* **histograms** — streaming summaries (count/total/min/max) of observed
  values;
* **timers** — histograms of wall-clock durations that additionally
  accumulate CPU time (``phase.kernel_batch``).

Everything here is deliberately boring: plain dicts behind one lock, no
background threads, no sampling.  The design constraints come from the
simulation stack this instruments:

* **zero RNG** — nothing in this module draws randomness, so enabling
  metrics can never perturb a seeded simulation;
* **deterministic merge** — :meth:`Registry.merge_snapshot` folds a
  worker-process snapshot into a parent registry with purely commutative
  arithmetic for counters/histograms/timers (gauges are last-writer-wins,
  so callers merge snapshots in a deterministic order — the sweep runner
  merges by cell index);
* **JSON-stable snapshots** — :meth:`Registry.snapshot` returns plain
  dicts of primitives, versioned by :data:`METRICS_SCHEMA_VERSION`, which
  is exactly what ``repro run --metrics-out`` and the ``<slug>.metrics.json``
  artifact serialize.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

#: Bump when the snapshot layout changes; embedded in every snapshot so
#: downstream tooling (and the perf PRs that regress against these files)
#: can reject incompatible data.
METRICS_SCHEMA_VERSION = 1


class HistogramStat:
    """Streaming summary of observed values: count, total, min, max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge(self, other: Dict[str, Any]) -> None:
        self.count += int(other.get("count", 0))
        self.total += float(other.get("total", 0.0))
        for name, fold in (("min", min), ("max", max)):
            theirs = other.get(name)
            if theirs is None:
                continue
            ours = getattr(self, name)
            setattr(self, name, theirs if ours is None else fold(ours, theirs))


class TimerStat:
    """Wall-clock histogram plus an accumulated CPU-seconds total."""

    __slots__ = ("wall", "cpu_total")

    def __init__(self) -> None:
        self.wall = HistogramStat()
        self.cpu_total = 0.0

    def observe(self, wall: float, cpu: float = 0.0) -> None:
        self.wall.observe(wall)
        self.cpu_total += float(cpu)

    def snapshot(self) -> Dict[str, Any]:
        return {**self.wall.snapshot(), "cpu_total": self.cpu_total}

    def merge(self, other: Dict[str, Any]) -> None:
        self.wall.merge(other)
        self.cpu_total += float(other.get("cpu_total", 0.0))


class _TimerContext:
    """Context manager measuring wall (``perf_counter``) and CPU
    (``process_time``) around a block, recording into one timer."""

    __slots__ = ("_registry", "_name", "_wall0", "_cpu0")

    def __init__(self, registry: "Registry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_TimerContext":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._registry.observe_timer(
            self._name,
            time.perf_counter() - self._wall0,
            time.process_time() - self._cpu0,
        )


class Registry:
    """A named collection of counters, gauges, histograms, and timers.

    Thread-safe (one lock around every mutation) so progress hooks and
    the main thread can record concurrently; not shared across processes
    — worker processes build their own registry and ship a
    :meth:`snapshot` back for the parent to :meth:`merge_snapshot`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramStat] = {}
        self._timers: Dict[str, TimerStat] = {}

    # -- recording ------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = HistogramStat()
            hist.observe(value)

    def observe_timer(self, name: str, wall: float, cpu: float = 0.0) -> None:
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = TimerStat()
            timer.observe(wall, cpu)

    def timer(self, name: str) -> _TimerContext:
        """``with registry.timer("phase.x"):`` — time a block (wall + CPU)."""
        return _TimerContext(self, name)

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def timer_stat(self, name: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            timer = self._timers.get(name)
            return None if timer is None else timer.snapshot()

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as JSON-safe primitives (sorted names)."""
        with self._lock:
            return {
                "schema_version": METRICS_SCHEMA_VERSION,
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: hist.snapshot()
                    for name, hist in sorted(self._histograms.items())
                },
                "timers": {
                    name: timer.snapshot()
                    for name, timer in sorted(self._timers.items())
                },
            }

    # -- aggregation ----------------------------------------------------

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry.  Counter/histogram/timer merging is commutative; gauges
        are last-writer-wins, so callers needing determinism must merge
        snapshots in a fixed order.
        """
        if int(snap.get("schema_version", METRICS_SCHEMA_VERSION)) != (
            METRICS_SCHEMA_VERSION
        ):
            raise ValueError(
                f"metrics snapshot schema {snap.get('schema_version')!r} "
                f"does not match {METRICS_SCHEMA_VERSION}"
            )
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in snap.get("gauges", {}).items():
                self._gauges[name] = float(value)
            for name, other in snap.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = HistogramStat()
                hist.merge(other)
            for name, other in snap.get("timers", {}).items():
                timer = self._timers.get(name)
                if timer is None:
                    timer = self._timers[name] = TimerStat()
                timer.merge(other)
