"""Graph-level protocol transformations (sections 4, 5, and the appendix).

These operate directly on :class:`~repro.model.membership_graph.MembershipGraph`
objects and mirror the paper's modeling of protocol actions as random graph
transformations.  The protocol engines in :mod:`repro.core` maintain richer
slot-level state; this module is the analytical counterpart used by the
global-Markov-chain enumeration (section 7.2) and by reachability tests of
the appendix lemmas.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.membership_graph import MembershipGraph, NodeId


def apply_send(
    graph: MembershipGraph,
    initiator: NodeId,
    target: NodeId,
    payload: NodeId,
    d_low: int,
) -> bool:
    """Apply the send step of an S&F action in place.

    The initiator ``u`` selected view entries holding ``target`` and
    ``payload``; it clears both unless its outdegree is at the lower
    threshold ``d_low`` (a *duplication*, Figure 5.2(c)).

    Returns ``True`` if the entries were cleared, ``False`` on duplication.
    Raises ``KeyError`` if the named entries are not present.
    """
    if target == payload:
        if graph.multiplicity(initiator, target) < 2:
            raise KeyError(
                f"node {initiator} lacks two copies of {target} to send"
            )
    else:
        if not graph.has_edge(initiator, target):
            raise KeyError(f"edge ({initiator}, {target}) not present")
        if not graph.has_edge(initiator, payload):
            raise KeyError(f"edge ({initiator}, {payload}) not present")
    if graph.outdegree(initiator) > d_low:
        graph.remove_edge(initiator, target)
        graph.remove_edge(initiator, payload)
        return True
    return False


def apply_receive(
    graph: MembershipGraph,
    receiver: NodeId,
    sender: NodeId,
    payload: NodeId,
    view_size: int,
) -> bool:
    """Apply the receive step of an S&F action in place.

    The receiver adds both ids from the message ``[sender, payload]`` into
    empty view entries, unless its view is full (``d(receiver) = s``), in
    which case the ids are *deleted* (Figure 5.2(d)) and nothing changes.

    Returns ``True`` if the ids were stored, ``False`` on deletion.
    """
    if graph.outdegree(receiver) < view_size:
        graph.add_edge(receiver, sender)
        graph.add_edge(receiver, payload)
        return True
    return False


def sandf_action(
    graph: MembershipGraph,
    initiator: NodeId,
    target: NodeId,
    payload: NodeId,
    d_low: int,
    view_size: int,
    lost: bool,
) -> MembershipGraph:
    """Return the graph after one full S&F action (send + receive steps).

    ``lost=True`` models message loss: the send step still executes (the
    sender cannot detect loss and cannot retransmit), but the receive step
    never runs.  The input graph is not mutated.
    """
    result = graph.copy()
    apply_send(result, initiator, target, payload, d_low)
    if not lost:
        apply_receive(result, target, initiator, payload, view_size)
    return result


def enumerate_action_outcomes(
    graph: MembershipGraph,
    initiator: NodeId,
    d_low: int,
    view_size: int,
    loss_rate: float,
) -> List[Tuple[float, MembershipGraph]]:
    """Enumerate all (probability, successor) outcomes of ``initiator`` acting.

    Probabilities follow the protocol of Figure 5.1: two distinct slots out
    of ``view_size`` are chosen uniformly at random; if either is empty the
    action is a self-loop.  For nonempty ordered pairs with values
    ``(target, payload)``, the message is lost with probability
    ``loss_rate``.  The returned probabilities sum to 1 (self-loop mass is
    aggregated onto the unchanged input graph).

    This enumeration is the building block of the global Markov chain of
    section 7.1; its cost is quadratic in the number of distinct ids in the
    initiator's view.
    """
    if not 0.0 <= loss_rate <= 1.0:
        raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
    view = graph.out_view(initiator)
    d = sum(view.values())
    slots = view_size * (view_size - 1)
    outcomes: Dict[MembershipGraph, float] = {}
    self_loop = 1.0 - d * (d - 1) / slots

    for target, target_count in view.items():
        for payload, payload_count in view.items():
            if target == payload:
                pair_prob = target_count * (target_count - 1) / slots
            else:
                pair_prob = target_count * payload_count / slots
            if pair_prob == 0.0:
                continue
            delivered = sandf_action(
                graph, initiator, target, payload, d_low, view_size, lost=False
            )
            if loss_rate < 1.0:
                _accumulate(outcomes, delivered, pair_prob * (1.0 - loss_rate))
            if loss_rate > 0.0:
                dropped = sandf_action(
                    graph, initiator, target, payload, d_low, view_size, lost=True
                )
                _accumulate(outcomes, dropped, pair_prob * loss_rate)

    results = [(prob, successor) for successor, prob in outcomes.items()]
    if self_loop > 1e-15:
        results.append((self_loop, graph.copy()))
    return results


def _accumulate(
    outcomes: Dict[MembershipGraph, float], successor: MembershipGraph, prob: float
) -> None:
    outcomes[successor] = outcomes.get(successor, 0.0) + prob


# ----------------------------------------------------------------------
# Appendix transformations (used to test reachability lemmas)
# ----------------------------------------------------------------------


def edge_exchange(
    graph: MembershipGraph,
    u: NodeId,
    w: NodeId,
    v: NodeId,
    z: NodeId,
    d_low: int,
    view_size: int,
) -> MembershipGraph:
    """The appendix's *edge exchange* between neighbors ``u`` and ``v``.

    Removes edges ``(u, w)`` and ``(v, z)``, creating ``(u, z)`` and
    ``(v, w)`` instead, implemented by two loss-free S&F actions exactly as
    in the appendix: ``u`` sends ``[u, w]`` to ``v``; then ``v`` sends
    ``[v, z]`` back to ``u``.

    Prerequisites (checked): edge ``(u, v)`` exists, ``d(u) > d_low`` and
    ``d(v) < view_size``.  The input graph is not mutated.
    """
    if not graph.has_edge(u, v):
        raise ValueError(f"edge exchange requires edge ({u}, {v})")
    if graph.outdegree(u) <= d_low:
        raise ValueError(f"edge exchange requires d({u}) > d_low={d_low}")
    if graph.outdegree(v) >= view_size:
        raise ValueError(f"edge exchange requires d({v}) < s={view_size}")
    step1 = sandf_action(graph, u, v, w, d_low, view_size, lost=False)
    # After step 1, v holds u (just received) and z; v's send must clear, so
    # its outdegree must exceed d_low — guaranteed because it just grew by 2.
    step2 = sandf_action(step1, v, u, z, d_low, view_size, lost=False)
    return step2


def degree_borrowing(
    graph: MembershipGraph,
    u: NodeId,
    v: NodeId,
    d_low: int,
    view_size: int,
) -> MembershipGraph:
    """The appendix's *degree borrowing* between neighbors ``u`` and ``v``.

    Decreases ``d(u)`` by 2 and increases ``d(v)`` by 2 while keeping both
    sum degrees invariant, implemented by ``u`` initiating one loss-free
    action toward ``v``.  Prerequisites (checked): ``v ∈ u.lv``,
    ``d(u) > d_low`` and ``d(v) < view_size``.
    """
    if not graph.has_edge(u, v):
        raise ValueError(f"degree borrowing requires edge ({u}, {v})")
    if graph.outdegree(u) <= d_low:
        raise ValueError(f"degree borrowing requires d({u}) > d_low={d_low}")
    if graph.outdegree(v) >= view_size:
        raise ValueError(f"degree borrowing requires d({v}) < s={view_size}")
    view = graph.out_view(u)
    others = sorted(t for t in view if t != v)
    if others:
        payload = others[0]
    elif view[v] >= 2:
        payload = v
    else:
        raise ValueError(f"node {u} has no second entry to send")
    return sandf_action(graph, u, v, payload, d_low, view_size, lost=False)
