"""Directed multigraph of membership information (section 4 of the paper).

``MembershipGraph`` stores, for every node ``u``, the multiset of ids in
``u``'s local view.  It provides the degree accessors the analysis uses
(outdegree ``d(u)``, indegree ``din(u)``, sum degree ``ds(u) = d + 2·din``),
weak-connectivity checks, conversion to :mod:`networkx` for graph statistics,
and a canonical hashable encoding used by the global Markov-chain enumerator
of section 7.2.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple

import networkx as nx

NodeId = int
Edge = Tuple[NodeId, NodeId]


class MembershipGraph:
    """A directed multigraph where edge ``(u, v)`` means ``v ∈ u.lv``.

    The multigraph view is the paper's analytical object; the protocol
    engines maintain richer per-slot state (see :class:`repro.core.view.View`)
    and can export to this representation at any time.
    """

    def __init__(self, nodes: Iterable[NodeId] = ()):
        self._out: Dict[NodeId, Counter] = {}
        self._indegree: Dict[NodeId, int] = {}
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], nodes: Iterable[NodeId] = ()
    ) -> "MembershipGraph":
        """Build a graph from an edge multiset, adding endpoints as nodes."""
        graph = cls(nodes)
        for u, v in edges:
            if u not in graph._out:
                graph.add_node(u)
            if v not in graph._out:
                graph.add_node(v)
            graph.add_edge(u, v)
        return graph

    @classmethod
    def random_regular(
        cls, n: int, outdegree: int, rng
    ) -> "MembershipGraph":
        """Build a graph where every node has ``outdegree`` uniform out-edges.

        Self-edges are avoided.  This is the standard "sufficiently connected"
        initial topology used when studying convergence from a good start.
        """
        if n < 2:
            raise ValueError(f"need at least 2 nodes, got {n}")
        if outdegree > n - 1:
            raise ValueError(
                f"outdegree {outdegree} impossible without self-edges for n={n}"
            )
        graph = cls(range(n))
        for u in range(n):
            candidates = [v for v in range(n) if v != u]
            targets = rng.choice(len(candidates), size=outdegree, replace=False)
            for index in targets:
                graph.add_edge(u, candidates[int(index)])
        return graph

    @classmethod
    def star(cls, n: int, center: NodeId = 0, spokes_out: int = 2) -> "MembershipGraph":
        """Adversarial initial topology: every node points at ``center``.

        Each non-center node holds ``spokes_out`` copies of the center id
        (outdegree must be even for S&F); the center points at the first
        ``spokes_out`` non-center nodes.  Used by the load-balance experiment
        (Property M2) to demonstrate convergence from a maximally unbalanced
        start.
        """
        graph = cls(range(n))
        others = [v for v in range(n) if v != center]
        for u in others:
            for _ in range(spokes_out):
                graph.add_edge(u, center)
        for v in others[:spokes_out]:
            graph.add_edge(center, v)
        return graph

    @classmethod
    def ring(cls, n: int, hops: int = 1) -> "MembershipGraph":
        """A directed ring where each node points at its next ``hops`` nodes.

        With ``hops=2`` every outdegree is even, satisfying S&F's invariant.
        A high-diameter initial topology for convergence experiments.
        """
        graph = cls(range(n))
        for u in range(n):
            for step in range(1, hops + 1):
                graph.add_edge(u, (u + step) % n)
        return graph

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_node(self, node: NodeId) -> None:
        """Add an isolated node (no-op if present)."""
        if node not in self._out:
            self._out[node] = Counter()
            self._indegree[node] = 0

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all its incident edges.

        Models a crash/leave at the graph level: other nodes may still hold
        the id (dangling edges are dropped here because the multigraph tracks
        only live nodes; engines model dangling ids explicitly).
        """
        if node not in self._out:
            raise KeyError(f"unknown node {node}")
        # Drop the node's out-edges (adjusting targets' indegrees), its own
        # indegree entry, and every other node's edges pointing at it.
        for target, multiplicity in self._out.pop(node).items():
            if target != node:
                self._indegree[target] -= multiplicity
        self._indegree.pop(node)
        for counter in self._out.values():
            counter.pop(node, None)

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Add one occurrence of ``v`` to ``u``'s view."""
        if u not in self._out or v not in self._out:
            raise KeyError(f"both endpoints must exist (got {u} -> {v})")
        self._out[u][v] += 1
        self._indegree[v] += 1

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove one occurrence of ``v`` from ``u``'s view."""
        count = self._out.get(u, Counter())[v]
        if count <= 0:
            raise KeyError(f"edge ({u}, {v}) not present")
        if count == 1:
            del self._out[u][v]
        else:
            self._out[u][v] = count - 1
        self._indegree[v] -= 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> List[NodeId]:
        return list(self._out)

    @property
    def num_nodes(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        return sum(sum(counter.values()) for counter in self._out.values())

    def has_node(self, node: NodeId) -> bool:
        return node in self._out

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return self._out.get(u, Counter())[v] > 0

    def multiplicity(self, u: NodeId, v: NodeId) -> int:
        """Number of occurrences of ``v`` in ``u``'s view."""
        return self._out.get(u, Counter())[v]

    def out_view(self, u: NodeId) -> Counter:
        """The multiset of ids in ``u``'s view (a copy)."""
        return Counter(self._out[u])

    def out_edges(self, u: NodeId) -> Iterator[NodeId]:
        """Iterate over out-neighbors of ``u`` with multiplicity."""
        for v, multiplicity in self._out[u].items():
            for _ in range(multiplicity):
                yield v

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges with multiplicity."""
        for u, counter in self._out.items():
            for v, multiplicity in counter.items():
                for _ in range(multiplicity):
                    yield (u, v)

    def outdegree(self, u: NodeId) -> int:
        """``d(u)``: number of (nonempty) out-entries of ``u``."""
        return sum(self._out[u].values())

    def indegree(self, u: NodeId) -> int:
        """``din(u)``: number of view entries across the system holding ``u``."""
        return self._indegree[u]

    def sum_degree(self, u: NodeId) -> int:
        """``ds(u) = d(u) + 2·din(u)`` (Definition 6.1)."""
        return self.outdegree(u) + 2 * self.indegree(u)

    def sum_degree_vector(self) -> Dict[NodeId, int]:
        """The vector ``d̄s`` mapping each node to its sum degree (§7.2)."""
        return {u: self.sum_degree(u) for u in self._out}

    def self_edge_count(self, u: NodeId) -> int:
        """Number of self-edges ``(u, u)`` — always labeled dependent."""
        return self._out[u][u]

    def duplicate_edge_count(self, u: NodeId) -> int:
        """Number of redundant parallel out-edges at ``u``.

        An id with multiplicity ``m > 1`` contributes ``m − 1`` duplicates;
        the paper counts all but one of a dependent group as dependent.
        """
        return sum(m - 1 for m in self._out[u].values() if m > 1)

    # ------------------------------------------------------------------
    # Connectivity / export
    # ------------------------------------------------------------------

    def is_weakly_connected(self) -> bool:
        """True if an undirected path joins every pair of nodes."""
        if self.num_nodes <= 1:
            return True
        adjacency: Dict[NodeId, set] = {u: set() for u in self._out}
        for u, counter in self._out.items():
            for v in counter:
                if v != u:
                    adjacency[u].add(v)
                    adjacency[v].add(u)
        start = next(iter(adjacency))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == self.num_nodes

    def weakly_connected_components(self) -> List[FrozenSet[NodeId]]:
        """Return the weakly connected components as frozensets."""
        return [
            frozenset(component)
            for component in nx.weakly_connected_components(self.to_networkx())
        ]

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export to a :class:`networkx.MultiDiGraph` for graph statistics."""
        graph = nx.MultiDiGraph()
        graph.add_nodes_from(self._out)
        graph.add_edges_from(self.edges())
        return graph

    def canonical_state(self) -> Tuple[Tuple[NodeId, Tuple[Tuple[NodeId, int], ...]], ...]:
        """A hashable canonical encoding of the global state.

        Views are multisets, so slot order is irrelevant to the dynamics;
        sorting by node id and by target id yields a canonical form suitable
        for dict keys in the global-MC enumeration (section 7.2).
        """
        return tuple(
            (u, tuple(sorted(self._out[u].items())))
            for u in sorted(self._out)
        )

    def copy(self) -> "MembershipGraph":
        clone = MembershipGraph(self._out)
        for u, counter in self._out.items():
            clone._out[u] = Counter(counter)
        clone._indegree = dict(self._indegree)
        return clone

    # ------------------------------------------------------------------
    # Dunder / debugging
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MembershipGraph):
            return NotImplemented
        return self.canonical_state() == other.canonical_state()

    def __hash__(self) -> int:
        return hash(self.canonical_state())

    def __repr__(self) -> str:
        return (
            f"MembershipGraph(nodes={self.num_nodes}, edges={self.num_edges})"
        )

    def validate(self) -> None:
        """Internal consistency check: indegree cache matches edge multiset."""
        recomputed: Dict[NodeId, int] = {u: 0 for u in self._out}
        for u, counter in self._out.items():
            for v, multiplicity in counter.items():
                if v not in recomputed:
                    raise AssertionError(f"edge ({u}, {v}) points outside graph")
                if multiplicity < 0:
                    raise AssertionError(f"negative multiplicity on ({u}, {v})")
                recomputed[v] += multiplicity
        if recomputed != self._indegree:
            raise AssertionError("indegree cache out of sync with edges")
