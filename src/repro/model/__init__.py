"""The paper's membership-graph model (section 4).

A membership graph is a directed multigraph whose vertices are node ids and
whose edges mirror local-view contents: edge ``(u, v)`` appears once per
occurrence of ``v`` in ``u``'s view.  Protocol actions are modeled as random
transformations of this graph.
"""

from repro.model.membership_graph import MembershipGraph
from repro.model.transformations import (
    apply_receive,
    apply_send,
    degree_borrowing,
    edge_exchange,
)

__all__ = [
    "MembershipGraph",
    "apply_send",
    "apply_receive",
    "edge_exchange",
    "degree_borrowing",
]
