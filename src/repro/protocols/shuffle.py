"""A shuffle baseline (Cyclon-style; the paper's refs [1, 26, 27]).

Shuffle protocols *delete the ids they send* and rely on the peer's reply
to refill the freed entries.  With atomic actions this creates no spatial
dependencies — which is why the paper's analysis methodology descends from
them — but the exchange is bidirectional, so under message loss ids leak
out of the system: a lost request loses the sender's removed entries; a
lost reply loses the peer's.  Section 3.1: such protocols "are unable to
withstand message loss or node failures since the system gradually loses
more and more ids."  The baseline-comparison benchmark measures exactly
this attrition against S&F's stable edge count.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.protocols.base import GossipProtocol, Message, SendEffect

NodeId = int

#: Wire kinds of the two halves of a shuffle exchange.
KIND_REQUEST = "shuffle-request"
KIND_REPLY = "shuffle-reply"


class ShuffleProtocol(GossipProtocol):
    """Swap-based membership: exchange ``shuffle_length`` ids with a peer.

    Args:
        view_size: capacity of each node's view.
        shuffle_length: how many ids travel in each direction per exchange
            (including the initiator's own id in the request).
    """

    def __init__(self, view_size: int, shuffle_length: int = 3):
        super().__init__()
        if view_size < 2:
            raise ValueError(f"view_size must be at least 2, got {view_size}")
        if not 1 <= shuffle_length <= view_size:
            raise ValueError(
                f"shuffle_length must be in [1, {view_size}], got {shuffle_length}"
            )
        self.view_size = view_size
        self.shuffle_length = shuffle_length
        self._views: Dict[NodeId, List[NodeId]] = {}

    # -- population ------------------------------------------------------

    def node_ids(self) -> List[NodeId]:
        return list(self._views)

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self._views

    def add_node(self, node_id: NodeId, bootstrap_ids: Sequence[NodeId]) -> None:
        if node_id in self._views:
            raise ValueError(f"node {node_id} already exists")
        if len(bootstrap_ids) > self.view_size:
            raise ValueError("bootstrap view exceeds view size")
        self._views[node_id] = list(bootstrap_ids)

    def remove_node(self, node_id: NodeId) -> None:
        del self._views[node_id]

    # -- protocol steps ----------------------------------------------------

    def initiate(self, node_id: NodeId, rng) -> Optional[Message]:
        view = self._views[node_id]
        self.stats.actions += 1
        if not view:
            self.stats.self_loops += 1
            return None  # isolated: the attrition end-state under loss
        self.stats.non_self_loop_actions += 1
        target_index = int(rng.integers(len(view)))
        target = view.pop(target_index)
        to_send: List[NodeId] = [node_id]
        # Sample payload ids, excluding further copies of the target (the
        # target would discard pointers to itself, leaking ids even on a
        # lossless network).
        candidates = [i for i, value in enumerate(view) if value != target]
        budget = min(self.shuffle_length - 1, len(candidates))
        for _ in range(budget):
            pick = int(rng.integers(len(candidates)))
            index = candidates.pop(pick)
            to_send.append(view[index])
            # Keep candidate indices valid: remove by swap with the last
            # occupied slot, then fix up any candidate pointing at it.
            last = len(view) - 1
            view[index] = view[last]
            view.pop()
            for c, cand in enumerate(candidates):
                if cand == last:
                    candidates[c] = index
        self.stats.messages_sent += 1
        return Message(
            sender=node_id,
            target=target,
            payload=[(v, False) for v in to_send],
            kind=KIND_REQUEST,
        )

    def deliver_effects(self, message: Message, rng) -> Tuple[SendEffect, ...]:
        """The receive step, natively on the event/effect seam.

        A request produces the refill half as a typed reply effect; a
        lost reply is exactly the id-attrition channel §3.1 charges
        shuffle protocols with.
        """
        view = self._views.get(message.target)
        if view is None:
            return ()
        self.stats.deliveries += 1
        received = [v for v, _ in message.payload]
        if message.kind == KIND_REQUEST:
            # Sample the reply excluding pointers to the requester, which it
            # would discard (see initiate for the symmetric exclusion).
            reply_ids: List[NodeId] = []
            candidates = [
                i for i, value in enumerate(view) if value != message.sender
            ]
            budget = min(len(received), len(candidates))
            for _ in range(budget):
                pick = int(rng.integers(len(candidates)))
                index = candidates.pop(pick)
                reply_ids.append(view[index])
                last = len(view) - 1
                view[index] = view[last]
                view.pop()
                for c, cand in enumerate(candidates):
                    if cand == last:
                        candidates[c] = index
            self._absorb(message.target, received)
            if not reply_ids:
                return ()
            self.stats.messages_sent += 1
            return (
                SendEffect(
                    Message(
                        sender=message.target,
                        target=message.sender,
                        payload=[(v, False) for v in reply_ids],
                        kind=KIND_REPLY,
                    ),
                    reply=True,
                ),
            )
        # shuffle-reply
        self._absorb(message.target, received)
        return ()

    def deliver(self, message: Message, rng) -> Optional[Message]:
        """Compatibility wrapper over :meth:`deliver_effects`."""
        effects = self.deliver_effects(message, rng)
        return effects[0].message if effects else None

    def _absorb(self, node_id: NodeId, ids: List[NodeId]) -> None:
        view = self._views[node_id]
        for value in ids:
            if value == node_id:
                continue  # never store a self-pointer
            if len(view) >= self.view_size:
                self.stats.deletions += 1
                continue
            view.append(value)

    # -- observation -------------------------------------------------------

    def view_of(self, node_id: NodeId) -> Counter:
        return Counter(self._views[node_id])

    def total_edges(self) -> int:
        """System-wide id count — the attrition signal under loss."""
        return sum(len(view) for view in self._views.values())

    def isolated_count(self) -> int:
        """Nodes with empty views (fully starved by loss)."""
        return sum(1 for view in self._views.values() if not view)
