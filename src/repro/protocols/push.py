"""A push baseline (lpbcast-style; the paper's ref [13]).

Push protocols *keep the ids they send*: an action copies the sender's own
id (reinforcement) and some view ids (mixing) to a random neighbor, which
merges them into its view, evicting random entries on overflow.  Keeping
sent ids makes the protocol trivially immune to loss — nothing is removed
until an eviction — but every successful push leaves correlated copies in
neighboring views.  The paper (section 3.1): "Most protocols ... keep the
sent ids, thus inducing dependence between neighbor views."

The baseline-comparison benchmark measures this as neighbor-view overlap
growing well beyond the i.i.d.-uniform level, in contrast to S&F's bounded
``2(ℓ+δ)`` dependence.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.protocols.base import GossipProtocol, Message

NodeId = int

#: Wire kind of a push message (the protocol's only message role, so the
#: base class's default effect wrappers drive it on the event seam).
KIND_PUSH = "push"


class PushProtocol(GossipProtocol):
    """Copy-based membership: push own id plus ``gossip_length`` view ids.

    Args:
        view_size: capacity of each node's view.
        gossip_length: number of view ids copied per push (in addition to
            the sender's own id).
    """

    def __init__(self, view_size: int, gossip_length: int = 2):
        super().__init__()
        if view_size < 2:
            raise ValueError(f"view_size must be at least 2, got {view_size}")
        if not 0 <= gossip_length <= view_size:
            raise ValueError(
                f"gossip_length must be in [0, {view_size}], got {gossip_length}"
            )
        self.view_size = view_size
        self.gossip_length = gossip_length
        self._views: Dict[NodeId, List[NodeId]] = {}

    # -- population ------------------------------------------------------

    def node_ids(self) -> List[NodeId]:
        return list(self._views)

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self._views

    def add_node(self, node_id: NodeId, bootstrap_ids: Sequence[NodeId]) -> None:
        if node_id in self._views:
            raise ValueError(f"node {node_id} already exists")
        if len(bootstrap_ids) > self.view_size:
            raise ValueError("bootstrap view exceeds view size")
        self._views[node_id] = list(bootstrap_ids)

    def remove_node(self, node_id: NodeId) -> None:
        del self._views[node_id]

    # -- protocol steps ----------------------------------------------------

    def initiate(self, node_id: NodeId, rng) -> Optional[Message]:
        view = self._views[node_id]
        self.stats.actions += 1
        if not view:
            self.stats.self_loops += 1
            return None
        self.stats.non_self_loop_actions += 1
        target = view[int(rng.integers(len(view)))]  # kept in the view
        payload: List[NodeId] = [node_id]  # reinforcement component
        budget = min(self.gossip_length, len(view))
        for _ in range(budget):  # mixing component (ids copied, not moved)
            payload.append(view[int(rng.integers(len(view)))])
        self.stats.messages_sent += 1
        return Message(
            sender=node_id,
            target=target,
            payload=[(v, False) for v in payload],
            kind=KIND_PUSH,
        )

    def deliver(self, message: Message, rng) -> Optional[Message]:
        view = self._views.get(message.target)
        if view is None:
            return None
        self.stats.deliveries += 1
        for value, _ in message.payload:
            if value == message.target:
                continue
            if len(view) >= self.view_size:
                evict = int(rng.integers(len(view)))
                view[evict] = value
                self.stats.deletions += 1
            else:
                view.append(value)
        return None

    # -- observation -------------------------------------------------------

    def view_of(self, node_id: NodeId) -> Counter:
        return Counter(self._views[node_id])

    def total_edges(self) -> int:
        return sum(len(view) for view in self._views.values())
