"""Gossip membership protocols: the common interface and the baselines.

The baselines implement the taxonomy of section 3.1:

* :class:`~repro.protocols.shuffle.ShuffleProtocol` — a Cyclon-style swap
  that deletes sent ids; clean (no dependencies) but unable to withstand
  loss, which the paper uses to motivate S&F.
* :class:`~repro.protocols.push.PushProtocol` — an lpbcast-style push that
  keeps sent ids; loss-immune but builds spatial dependencies.
* :class:`~repro.protocols.pushpull.PushPullProtocol` — an Allavena-style
  combination of reinforcement (push own id) and mixing (pull a view id).

S&F itself lives in :mod:`repro.core.sandf` and implements the same
:class:`~repro.protocols.base.GossipProtocol` interface.
"""

from repro.protocols.base import GossipProtocol, Message, ProtocolStats
from repro.protocols.push import PushProtocol
from repro.protocols.pushpull import PushPullProtocol
from repro.protocols.shuffle import ShuffleProtocol

__all__ = [
    "GossipProtocol",
    "Message",
    "ProtocolStats",
    "ShuffleProtocol",
    "PushProtocol",
    "PushPullProtocol",
]
