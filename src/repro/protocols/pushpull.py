"""A push-pull baseline (Allavena/Demers/Hopcroft-style; the paper's ref [2]).

Combines the two components section 3.1 identifies as crucial:

* **reinforcement by push** — the initiator sends its own id to a random
  neighbor, fixing representation nonuniformity;
* **mixing by pull** — the neighbor replies with a random id from its own
  view, spreading membership information.

Both nodes keep the ids they send, so like the push baseline this builds
neighbor-view dependence; and because the action is bidirectional, under
loss a pull can silently fail after the push half succeeded — the kind of
nonatomic interleaving prior analyses assumed away and that S&F was
designed to avoid.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.protocols.base import GossipProtocol, Message, SendEffect

NodeId = int

#: Wire kinds of the two halves of a push-pull exchange.
KIND_REQUEST = "pushpull-request"
KIND_REPLY = "pushpull-reply"


class PushPullProtocol(GossipProtocol):
    """Reinforcement-by-push + mixing-by-pull with fixed-size views.

    Args:
        view_size: capacity of each node's view; views are kept full by
            replacing random entries on insertion once at capacity.
    """

    def __init__(self, view_size: int):
        super().__init__()
        if view_size < 2:
            raise ValueError(f"view_size must be at least 2, got {view_size}")
        self.view_size = view_size
        self._views: Dict[NodeId, List[NodeId]] = {}

    # -- population ------------------------------------------------------

    def node_ids(self) -> List[NodeId]:
        return list(self._views)

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self._views

    def add_node(self, node_id: NodeId, bootstrap_ids: Sequence[NodeId]) -> None:
        if node_id in self._views:
            raise ValueError(f"node {node_id} already exists")
        if len(bootstrap_ids) > self.view_size:
            raise ValueError("bootstrap view exceeds view size")
        self._views[node_id] = list(bootstrap_ids)

    def remove_node(self, node_id: NodeId) -> None:
        del self._views[node_id]

    # -- protocol steps ----------------------------------------------------

    def initiate(self, node_id: NodeId, rng) -> Optional[Message]:
        view = self._views[node_id]
        self.stats.actions += 1
        if not view:
            self.stats.self_loops += 1
            return None
        self.stats.non_self_loop_actions += 1
        target = view[int(rng.integers(len(view)))]
        self.stats.messages_sent += 1
        return Message(
            sender=node_id,
            target=target,
            payload=[(node_id, False)],  # reinforcement: push own id
            kind=KIND_REQUEST,
        )

    def deliver_effects(self, message: Message, rng) -> Tuple[SendEffect, ...]:
        """The receive step, natively on the event/effect seam.

        A request produces the pull half as a typed reply effect; whether
        that reply survives the network is the transport's business — the
        nonatomic degradation under loss the paper's §3.1 describes.
        """
        view = self._views.get(message.target)
        if view is None:
            return ()
        self.stats.deliveries += 1
        if message.kind == KIND_REQUEST:
            self._insert(message.target, message.sender, rng)
            if not view:
                return ()
            pulled = view[int(rng.integers(len(view)))]  # mixing: pull a view id
            self.stats.messages_sent += 1
            return (
                SendEffect(
                    Message(
                        sender=message.target,
                        target=message.sender,
                        payload=[(pulled, False)],
                        kind=KIND_REPLY,
                    ),
                    reply=True,
                ),
            )
        # pushpull-reply: the initiator absorbs the pulled id.
        for value, _ in message.payload:
            self._insert(message.target, value, rng)
        return ()

    def deliver(self, message: Message, rng) -> Optional[Message]:
        """Compatibility wrapper over :meth:`deliver_effects`."""
        effects = self.deliver_effects(message, rng)
        return effects[0].message if effects else None

    def _insert(self, node_id: NodeId, value: NodeId, rng) -> None:
        if value == node_id:
            return
        view = self._views[node_id]
        if len(view) >= self.view_size:
            evict = int(rng.integers(len(view)))
            view[evict] = value
            self.stats.deletions += 1
        else:
            view.append(value)

    # -- observation -------------------------------------------------------

    def view_of(self, node_id: NodeId) -> Counter:
        return Counter(self._views[node_id])

    def total_edges(self) -> int:
        return sum(len(view) for view in self._views.values())
