"""The common interface implemented by every membership protocol here.

The split into :meth:`GossipProtocol.initiate` (the sender's step) and
:meth:`GossipProtocol.deliver` (the receiver's step) mirrors the paper's
notion of a *protocol step* — a transformation executable atomically at a
single node (section 4.1).  The engine decides whether a message produced
by ``initiate`` ever reaches ``deliver``; a lost message simply means the
receive step never runs, exactly the paper's loss model.

Pull-style protocols return a *reply* from ``deliver``; the engine subjects
replies to the same loss model, so a push-pull action degrades gracefully
into its constituent steps under loss instead of assuming atomicity.

**Execution-agnostic event/effect seam.**  A protocol step is driven by a
typed *event* (:class:`InitiateEvent` or :class:`DeliverEvent`) and
answers with zero or more typed *effects* (:class:`SendEffect` records).
:meth:`GossipProtocol.handle` is the single entry point every runtime
uses — the serial engine, the discrete-event engine, and the asyncio UDP
runtime (:mod:`repro.runtime`) all call ``handle`` and route the
resulting effects through their own transport
(:mod:`repro.net.transport`).  Nothing in a protocol assumes *how* a
produced message travels: synchronously in-process, through a delayed
event queue, or as a datagram on a real lossy network.  All records are
slotted, picklable dataclasses with a schema-versioned wire codec in
:mod:`repro.net.wire`.
"""

from __future__ import annotations

import abc
import sys
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.model.membership_graph import MembershipGraph

NodeId = int

#: ``@dataclass(**DATACLASS_SLOTS)`` — slotted records on 3.10+, plain
#: dataclasses on 3.9 (where ``slots=True`` does not exist).  Slots keep
#: the per-message footprint small (the DES queue and the UDP runtime
#: hold many in flight) without giving up pickling or dataclass ergonomics.
DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(**DATACLASS_SLOTS)
class Message:
    """A protocol message: ids in flight from ``sender`` to ``target``.

    ``payload`` carries (id, dependent-flag) pairs; for S&F it is
    ``[(u, dep_u), (w, dep_w)]`` — the sender's own id and the forwarded id.
    ``kind`` distinguishes message roles for multi-step protocols
    (e.g. ``"pull-request"`` vs ``"pull-reply"``).

    ``ext`` is an optional extension envelope for metadata piggybacked on
    protocol traffic by layers *outside* the protocol itself — currently
    the failure detector's liveness gossip (:mod:`repro.failure`).  Each
    extension owns one key mapping to a self-versioned blob, so carriers
    that do not understand an extension forward or ignore it without
    misreading the membership payload.  ``None`` (the default) encodes to
    exactly the pre-extension wire bytes, keeping extension-free runs
    bit-identical on the wire as well as in memory.

    The record is slotted and picklable, and round-trips through the
    versioned wire codec (:func:`repro.net.wire.encode` /
    :func:`repro.net.wire.decode`) so it can cross process and network
    boundaries unchanged.
    """

    sender: NodeId
    target: NodeId
    payload: List[Tuple[NodeId, bool]]
    kind: str = "push"
    ext: Optional[Dict[str, Dict]] = None


# ----------------------------------------------------------------------
# Typed events and effects (the execution seam)
# ----------------------------------------------------------------------


@dataclass(**DATACLASS_SLOTS)
class InitiateEvent:
    """Scheduler input: ``node`` runs one initiate action."""

    node: NodeId


@dataclass(**DATACLASS_SLOTS)
class DeliverEvent:
    """Network input: ``message`` arrived at its target."""

    message: Message


@dataclass(**DATACLASS_SLOTS)
class SendEffect:
    """Protocol output: ``message`` should be handed to the transport.

    ``reply`` marks effects produced by a *receive* step (push-pull and
    shuffle replies); engines account for them separately
    (``EngineStats.replies_*``) because under loss a reply can fail after
    the request half succeeded — the nonatomic degradation the paper's
    section 3.1 highlights.
    """

    message: Message
    reply: bool = False


#: Events a protocol consumes, and effects it produces.
ProtocolEvent = Union[InitiateEvent, DeliverEvent]
Effect = SendEffect


@dataclass
class ProtocolStats:
    """Event counters every protocol maintains (section 6 quantities).

    ``non_self_loop_actions`` counts actions where both selected entries
    were nonempty; ``duplications`` and ``deletions`` are the loss-
    compensation events whose balance Lemma 6.6 characterizes.
    """

    actions: int = 0
    self_loops: int = 0
    non_self_loop_actions: int = 0
    messages_sent: int = 0
    duplications: int = 0
    deletions: int = 0
    deliveries: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def duplication_probability(self) -> float:
        """Empirical Pr(duplication | non-self-loop action) — Lemma 6.7."""
        if self.non_self_loop_actions == 0:
            return 0.0
        return self.duplications / self.non_self_loop_actions

    def deletion_probability(self) -> float:
        """Empirical Pr(deletion | non-self-loop action)."""
        if self.non_self_loop_actions == 0:
            return 0.0
        return self.deletions / self.non_self_loop_actions

    def reset(self) -> None:
        self.actions = 0
        self.self_loops = 0
        self.non_self_loop_actions = 0
        self.messages_sent = 0
        self.duplications = 0
        self.deletions = 0
        self.deliveries = 0
        self.extra.clear()


class GossipProtocol(abc.ABC):
    """Abstract membership protocol over a population of nodes.

    Concrete protocols own all per-node state.  The engine drives them via
    ``initiate``/``deliver`` and observes state via ``view_of`` and
    ``export_graph``.
    """

    def __init__(self) -> None:
        self.stats = ProtocolStats()

    # -- population management ------------------------------------------------

    @abc.abstractmethod
    def node_ids(self) -> List[NodeId]:
        """All live node ids."""

    @abc.abstractmethod
    def add_node(self, node_id: NodeId, bootstrap_ids: Sequence[NodeId]) -> None:
        """Join ``node_id`` with the given bootstrap view contents."""

    @abc.abstractmethod
    def remove_node(self, node_id: NodeId) -> None:
        """Crash/leave: the node stops participating.

        Its id may linger in other views (the engines keep delivering to it
        only if it exists, so messages to a removed node are dropped —
        indistinguishable from loss, as in the paper's leave model).
        """

    # -- protocol steps --------------------------------------------------------

    @abc.abstractmethod
    def initiate(self, node_id: NodeId, rng) -> Optional[Message]:
        """Run one initiate action at ``node_id``; maybe produce a message."""

    @abc.abstractmethod
    def deliver(self, message: Message, rng) -> Optional[Message]:
        """Run the receive step for ``message``; maybe produce a reply."""

    # -- event/effect seam -----------------------------------------------------

    def initiate_effects(self, node_id: NodeId, rng) -> Tuple[SendEffect, ...]:
        """The initiate step as typed effects (default: wrap ``initiate``)."""
        message = self.initiate(node_id, rng)
        return () if message is None else (SendEffect(message),)

    def deliver_effects(self, message: Message, rng) -> Tuple[SendEffect, ...]:
        """The receive step as typed effects.

        The default wraps :meth:`deliver` and labels any produced message
        a reply; protocols with multi-step exchanges (push-pull, shuffle)
        override this with their native effect-producing receive step.
        """
        reply = self.deliver(message, rng)
        return () if reply is None else (SendEffect(reply, reply=True),)

    def handle(self, event: ProtocolEvent, rng) -> Tuple[SendEffect, ...]:
        """Execute one protocol step for ``event``; return its effects.

        This is the execution-agnostic entry point: every runtime — the
        serial engine, the discrete-event engine, the UDP node runtime —
        drives the protocol exclusively through it and owns the decision
        of what to *do* with the returned :class:`SendEffect` records
        (synchronous loopback, delayed queue, or real datagrams).
        """
        if isinstance(event, InitiateEvent):
            return self.initiate_effects(event.node, rng)
        if isinstance(event, DeliverEvent):
            return self.deliver_effects(event.message, rng)
        raise TypeError(f"unknown protocol event: {event!r}")

    # -- observation -----------------------------------------------------------

    @abc.abstractmethod
    def view_of(self, node_id: NodeId) -> Counter:
        """The multiset of ids in ``node_id``'s view."""

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in set(self.node_ids())

    def outdegree(self, node_id: NodeId) -> int:
        return sum(self.view_of(node_id).values())

    def export_graph(self) -> MembershipGraph:
        """Snapshot the global membership graph (section 4's object).

        Dangling ids (pointing at removed nodes) are preserved as vertices
        so indegree bookkeeping of departed nodes remains observable.
        """
        nodes = list(self.node_ids())
        graph = MembershipGraph(nodes)
        for u in nodes:
            for v, multiplicity in self.view_of(u).items():
                if not graph.has_node(v):
                    graph.add_node(v)
                for _ in range(multiplicity):
                    graph.add_edge(u, v)
        return graph

    def indegrees(self) -> Dict[NodeId, int]:
        """Indegree of every live node (for Property M2 measurement)."""
        counts: Dict[NodeId, int] = {u: 0 for u in self.node_ids()}
        for u in self.node_ids():
            for v, multiplicity in self.view_of(u).items():
                if v in counts:
                    counts[v] += multiplicity
        return counts
