"""Checkpoint/resume journal and coordination fabric for sweep grids.

A long sweep that dies 90% of the way through should not repeat the 90%.
:class:`CheckpointStore` journals each completed cell's result to disk as
it lands, so a re-run of the *same* sweep resumes from where the previous
run stopped — with bit-identical output for pure workers, because the
journaled result **is** the worker's return value and per-cell seeds are
position-derived (see :mod:`repro.runner.sweep`).

Entries follow the same content-address discipline as
:mod:`repro.markov.solve_cache`:

* the key is the SHA-256 of everything the cell's result depends on — a
  schema version, the worker's identity, the cell's grid position, point,
  replication, seed, and the shared context — so a changed grid, seed, or
  worker can never produce a false resume;
* writes go through a temporary file plus :func:`os.replace` (atomic on
  POSIX and Windows), so a crash mid-write never leaves a half-written
  entry and concurrent writers race harmlessly;
* corrupt or unpicklable entries are quarantined (moved into a
  ``quarantine/`` subdirectory for post-mortem) on first read and treated
  as misses, so one bad file costs one recomputation, not a wedged
  resume.

Only *successful* cells are journaled.  Failed, skipped, and timed-out
cells are retried by the next run — exactly the semantics a resumable
sweep wants.

Beyond resume, the store doubles as the **coordination fabric** for
multi-dispatcher sweeps (``SweepRunner(coordinate=True)``): per-cell
*leases* — small JSON files created with ``O_CREAT | O_EXCL`` — let
several dispatcher processes sharing one directory partition a grid
without duplicating work.  :meth:`CheckpointStore.claim` either creates
the lease (the caller owns the cell), refreshes a lease the caller
already owns, steals a lease whose TTL expired (the previous dispatcher
died), or reports the cell as held by a live peer.  Stealing replaces
the lease atomically and re-reads it to confirm ownership; in the
pathological race where several dispatchers steal the *same* stale lease
within one read-modify window, more than one may briefly believe it won
— harmless, because workers are pure and the journal write is atomic and
value-identical, so the cost is one duplicated computation on an
already-abandoned cell, never a wrong result.

A fault-injection wrapper that merely perturbs *execution* (not the
computed value) can set a ``checkpoint_token`` attribute naming the
worker it wraps; :func:`worker_token` honors it, which is what lets a
sweep interrupted under :class:`repro.runner.chaos.ChaosWorker` resume
with the plain worker.

Like the solve cache, a checkpoint directory stores pickles this library
itself produced; it is a private scratch directory, not an interchange
format — do not point it at untrusted data.  :func:`gc_store` (also
exposed as ``repro checkpoint-gc`` and ``tools/checkpoint_gc.py``)
prunes entries the current code can no longer resume from.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional, Tuple, Union

from repro.obs import get_telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports us)
    from repro.runner.sweep import GridCell

LOGGER = logging.getLogger("repro.runner.checkpoint")

#: Bump whenever the journal layout or keying semantics change: every key
#: embeds this, so entries from older code can never be resumed from.
CHECKPOINT_SCHEMA_VERSION = 1

#: Name of the subdirectory corrupt entries are moved into.
QUARANTINE_DIR = "quarantine"

#: Default seconds before an unrefreshed lease may be stolen.
DEFAULT_LEASE_TTL = 300.0


def worker_token(worker: Any) -> str:
    """The identity under which ``worker``'s results are journaled.

    A wrapper that changes *how* a worker runs but not *what* it computes
    (e.g. a fault injector) sets ``checkpoint_token`` to the wrapped
    worker's token so its checkpoints interoperate with the plain worker.
    """
    token = getattr(worker, "checkpoint_token", None)
    if token:
        return str(token)
    module = getattr(worker, "__module__", type(worker).__module__)
    name = getattr(worker, "__qualname__", type(worker).__qualname__)
    return f"{module}.{name}"


def _describe(value: Any) -> str:
    """Content description of ``value`` for key derivation.

    ``repr`` alone truncates containers like numpy arrays, so a pickle
    digest is appended when the value is picklable; together they make
    distinct points/contexts collide only if both their repr *and* their
    serialized form agree.
    """
    try:
        digest = hashlib.sha256(pickle.dumps(value, protocol=4)).hexdigest()
    except Exception:
        digest = "unpicklable"
    return f"{value!r}#{digest}"


@dataclass
class CheckpointStats:
    """Journal counters for one store instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0


class CheckpointStore:
    """Disk journal of completed sweep cells, one pickle per cell.

    Args:
        directory: where entries live; created on first write.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.stats = CheckpointStats()
        self._quarantine_logged = False

    def cell_key(self, worker: Any, cell: "GridCell", context: Any) -> str:
        """SHA-256 content address of one (worker, cell, context) triple."""
        canonical = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "worker": worker_token(worker),
            "index": cell.index,
            "point": _describe(cell.point),
            "replication": cell.replication,
            "seed": repr(cell.seed),
            "context": _describe(context),
        }
        payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def load(self, key: str) -> Tuple[bool, Any]:
        """``(True, result)`` for a journaled cell, else ``(False, None)``.

        A corrupt entry is quarantined and reported as a miss, so the
        cell is simply recomputed.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            result = payload["result"]
        except (FileNotFoundError, OSError):
            self.stats.misses += 1
            get_telemetry().inc("checkpoint.misses")
            return False, None
        except Exception as exc:
            self._quarantine(path, exc)
            self.stats.misses += 1
            get_telemetry().inc("checkpoint.misses")
            return False, None
        self.stats.hits += 1
        get_telemetry().inc("checkpoint.hits")
        return True, result

    def store(
        self,
        key: str,
        cell: "GridCell",
        result: Any,
        token: Optional[str] = None,
    ) -> None:
        """Atomically journal one completed cell's result.

        ``token`` is the producing worker's :func:`worker_token`; it is
        embedded in the payload (additively — absent in entries written
        by older code) so :func:`gc_store` can prune entries belonging to
        workers that no longer exist.
        """
        payload = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "cell": {
                "index": cell.index,
                "point": cell.point,
                "replication": cell.replication,
                "seed": cell.seed,
            },
            "result": result,
        }
        if token is not None:
            payload["worker"] = token
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_name, self._path(key))
            except BaseException:
                os.unlink(temp_name)
                raise
        except OSError:
            LOGGER.debug("checkpoint write failed for %s; continuing", key)
            return
        self.stats.writes += 1
        get_telemetry().inc("checkpoint.writes")

    # -- per-cell leases (multi-dispatcher coordination) ---------------

    def _lease_path(self, key: str) -> Path:
        return self.directory / f"{key}.lease"

    @staticmethod
    def _read_lease(path: Path) -> Optional[Dict[str, Any]]:
        """The lease record at ``path``, or ``None`` if absent/corrupt."""
        try:
            record = json.loads(path.read_text("utf-8"))
        except (FileNotFoundError, OSError):
            return None
        except ValueError:
            return {}  # corrupt: present but unparseable → treat as stale
        return record if isinstance(record, dict) else {}

    @staticmethod
    def _lease_expired(record: Dict[str, Any]) -> bool:
        try:
            ts = float(record["ts"])
            ttl = float(record["ttl"])
        except (KeyError, TypeError, ValueError):
            return True  # malformed lease: claimable
        return time.time() - ts >= ttl

    def _write_lease(self, path: Path, record: Dict[str, Any]) -> None:
        fd, temp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def claim(
        self, key: str, owner: str, *, ttl: float = DEFAULT_LEASE_TTL
    ) -> bool:
        """Try to lease cell ``key`` for ``owner``; True when owned.

        Exactly one of the dispatchers racing on a *fresh* cell wins (the
        lease file is created with ``O_CREAT | O_EXCL``, which is atomic
        on POSIX and Windows, including NFSv3+).  Re-claiming a lease the
        caller already owns refreshes its timestamp and succeeds.  A
        lease older than its ``ttl`` — or unparseable — is presumed
        abandoned and stolen: replaced atomically, then re-read to
        confirm this owner actually won any concurrent steal.
        """
        path = self._lease_path(key)
        record = {
            "owner": owner,
            "pid": os.getpid(),
            "ts": time.time(),
            "ttl": float(ttl),
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        except OSError:
            return False  # unwritable store: never claim what we can't hold
        else:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
            return True
        existing = self._read_lease(path)
        if existing is None:
            # Released between our O_EXCL failure and the read: recurse
            # once — the O_EXCL path settles any race.
            return self.claim(key, owner, ttl=ttl)
        if existing.get("owner") == owner:
            try:
                self._write_lease(path, record)  # refresh
            except OSError:
                pass  # still ours; refresh is best-effort
            return True
        if not self._lease_expired(existing):
            return False
        try:
            self._write_lease(path, record)
        except OSError:
            return False
        confirmed = self._read_lease(path)
        won = bool(confirmed) and confirmed.get("owner") == owner
        if won:
            LOGGER.info(
                "stole expired lease %s from %r", key[:12],
                existing.get("owner"),
            )
        return won

    def release(self, key: str) -> None:
        """Drop the lease on ``key`` (no-op when absent)."""
        try:
            self._lease_path(key).unlink()
        except OSError:
            pass

    def lease_info(self, key: str) -> Optional[Dict[str, Any]]:
        """The current lease record for ``key``, or ``None``."""
        record = self._read_lease(self._lease_path(key))
        return record or None

    # ------------------------------------------------------------------

    def _quarantine(self, path: Path, exc: BaseException) -> None:
        quarantine = self.directory / QUARANTINE_DIR
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                return
        get_telemetry().inc("checkpoint.quarantined")
        if not self._quarantine_logged:
            self._quarantine_logged = True
            LOGGER.warning(
                "quarantined corrupt checkpoint entry %s (%r); the cell will "
                "be recomputed (further quarantines logged at DEBUG)",
                path.name, exc,
            )
        else:
            LOGGER.debug("quarantined corrupt checkpoint entry %s (%r)", path.name, exc)

    def clear(self) -> None:
        """Delete every journal entry (and any leases)."""
        if self.directory.is_dir():
            for pattern in ("*.pkl", "*.lease"):
                for entry in self.directory.glob(pattern):
                    try:
                        entry.unlink()
                    except OSError:
                        pass

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.pkl"))


# ---------------------------------------------------------------------
# Garbage collection


@dataclass
class GCReport:
    """What :func:`gc_store` found and (unless ``dry_run``) removed."""

    scanned: int = 0
    pruned: int = 0
    kept: int = 0
    reclaimed_bytes: int = 0
    dry_run: bool = False
    #: prune counts keyed by reason (``stale-schema``, ``unreadable``,
    #: ``worker-mismatch``, ``orphan-tmp``, ``expired-lease``,
    #: ``corrupt-lease``, ``quarantined``).
    reasons: Dict[str, int] = field(default_factory=dict)

    def note(self, reason: str, size: int) -> None:
        self.pruned += 1
        self.reclaimed_bytes += size
        self.reasons[reason] = self.reasons.get(reason, 0) + 1


def gc_store(
    directory: Union[str, Path],
    *,
    workers: Optional[Iterable[str]] = None,
    dry_run: bool = False,
) -> GCReport:
    """Prune checkpoint entries the current code can no longer resume from.

    Removes, reporting reclaimed bytes per category:

    * journal entries (``*.pkl``) that are unreadable or whose embedded
      schema version differs from :data:`CHECKPOINT_SCHEMA_VERSION`;
    * journal entries whose ``worker`` token is not in ``workers`` (when
      a filter is given; entries written before tokens were recorded
      carry none and are pruned under a filter — conservative, since
      their producing worker cannot be verified);
    * orphaned ``*.tmp`` files from writers that died mid-write;
    * expired or corrupt ``*.lease`` files;
    * everything under ``quarantine/`` (already judged corrupt).

    Live leases and resumable entries are kept.  ``dry_run`` reports
    without deleting.
    """
    root = Path(directory)
    report = GCReport(dry_run=dry_run)
    if not root.is_dir():
        return report
    keep_workers = set(workers) if workers is not None else None

    def _remove(path: Path, reason: str) -> None:
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        if not dry_run:
            try:
                path.unlink()
            except OSError:
                return
        report.note(reason, size)
        LOGGER.debug("checkpoint-gc: %s %s (%s)",
                     "would prune" if dry_run else "pruned", path.name, reason)

    for path in sorted(root.glob("*.pkl")):
        report.scanned += 1
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            schema = payload["schema"]
        except Exception:
            _remove(path, "unreadable")
            continue
        if schema != CHECKPOINT_SCHEMA_VERSION:
            _remove(path, "stale-schema")
            continue
        if keep_workers is not None and payload.get("worker") not in keep_workers:
            _remove(path, "worker-mismatch")
            continue
        report.kept += 1

    for path in sorted(root.glob("*.tmp")):
        report.scanned += 1
        _remove(path, "orphan-tmp")

    for path in sorted(root.glob("*.lease")):
        report.scanned += 1
        record = CheckpointStore._read_lease(path)
        if record is None:
            continue  # vanished between glob and read
        if not record:
            _remove(path, "corrupt-lease")
        elif CheckpointStore._lease_expired(record):
            _remove(path, "expired-lease")
        else:
            report.kept += 1

    quarantine = root / QUARANTINE_DIR
    if quarantine.is_dir():
        for path in sorted(quarantine.iterdir()):
            if path.is_file():
                report.scanned += 1
                _remove(path, "quarantined")

    return report
