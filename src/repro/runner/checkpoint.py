"""Checkpoint/resume journal for sweep grids.

A long sweep that dies 90% of the way through should not repeat the 90%.
:class:`CheckpointStore` journals each completed cell's result to disk as
it lands, so a re-run of the *same* sweep resumes from where the previous
run stopped — with bit-identical output for pure workers, because the
journaled result **is** the worker's return value and per-cell seeds are
position-derived (see :mod:`repro.runner.sweep`).

Entries follow the same content-address discipline as
:mod:`repro.markov.solve_cache`:

* the key is the SHA-256 of everything the cell's result depends on — a
  schema version, the worker's identity, the cell's grid position, point,
  replication, seed, and the shared context — so a changed grid, seed, or
  worker can never produce a false resume;
* writes go through a temporary file plus :func:`os.replace` (atomic on
  POSIX and Windows), so a crash mid-write never leaves a half-written
  entry and concurrent writers race harmlessly;
* corrupt or unpicklable entries are quarantined (deleted) on first read
  and treated as misses, so one bad file costs one recomputation, not a
  wedged resume.

Only *successful* cells are journaled.  Failed, skipped, and timed-out
cells are retried by the next run — exactly the semantics a resumable
sweep wants.

A fault-injection wrapper that merely perturbs *execution* (not the
computed value) can set a ``checkpoint_token`` attribute naming the
worker it wraps; :func:`worker_token` honors it, which is what lets a
sweep interrupted under :class:`repro.runner.chaos.ChaosWorker` resume
with the plain worker.

Like the solve cache, a checkpoint directory stores pickles this library
itself produced; it is a private scratch directory, not an interchange
format — do not point it at untrusted data.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Tuple, Union

from repro.obs import get_telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports us)
    from repro.runner.sweep import GridCell

LOGGER = logging.getLogger("repro.runner.checkpoint")

#: Bump whenever the journal layout or keying semantics change: every key
#: embeds this, so entries from older code can never be resumed from.
CHECKPOINT_SCHEMA_VERSION = 1


def worker_token(worker: Any) -> str:
    """The identity under which ``worker``'s results are journaled.

    A wrapper that changes *how* a worker runs but not *what* it computes
    (e.g. a fault injector) sets ``checkpoint_token`` to the wrapped
    worker's token so its checkpoints interoperate with the plain worker.
    """
    token = getattr(worker, "checkpoint_token", None)
    if token:
        return str(token)
    module = getattr(worker, "__module__", type(worker).__module__)
    name = getattr(worker, "__qualname__", type(worker).__qualname__)
    return f"{module}.{name}"


def _describe(value: Any) -> str:
    """Content description of ``value`` for key derivation.

    ``repr`` alone truncates containers like numpy arrays, so a pickle
    digest is appended when the value is picklable; together they make
    distinct points/contexts collide only if both their repr *and* their
    serialized form agree.
    """
    try:
        digest = hashlib.sha256(pickle.dumps(value, protocol=4)).hexdigest()
    except Exception:
        digest = "unpicklable"
    return f"{value!r}#{digest}"


@dataclass
class CheckpointStats:
    """Journal counters for one store instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0


class CheckpointStore:
    """Disk journal of completed sweep cells, one pickle per cell.

    Args:
        directory: where entries live; created on first write.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.stats = CheckpointStats()
        self._quarantine_logged = False

    def cell_key(self, worker: Any, cell: "GridCell", context: Any) -> str:
        """SHA-256 content address of one (worker, cell, context) triple."""
        canonical = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "worker": worker_token(worker),
            "index": cell.index,
            "point": _describe(cell.point),
            "replication": cell.replication,
            "seed": repr(cell.seed),
            "context": _describe(context),
        }
        payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def load(self, key: str) -> Tuple[bool, Any]:
        """``(True, result)`` for a journaled cell, else ``(False, None)``.

        A corrupt entry is quarantined (deleted) and reported as a miss,
        so the cell is simply recomputed.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            result = payload["result"]
        except (FileNotFoundError, OSError):
            self.stats.misses += 1
            get_telemetry().inc("checkpoint.misses")
            return False, None
        except Exception as exc:
            self._quarantine(path, exc)
            self.stats.misses += 1
            get_telemetry().inc("checkpoint.misses")
            return False, None
        self.stats.hits += 1
        get_telemetry().inc("checkpoint.hits")
        return True, result

    def store(self, key: str, cell: "GridCell", result: Any) -> None:
        """Atomically journal one completed cell's result."""
        payload = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "cell": {
                "index": cell.index,
                "point": cell.point,
                "replication": cell.replication,
                "seed": cell.seed,
            },
            "result": result,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_name, self._path(key))
            except BaseException:
                os.unlink(temp_name)
                raise
        except OSError:
            LOGGER.debug("checkpoint write failed for %s; continuing", key)
            return
        self.stats.writes += 1
        get_telemetry().inc("checkpoint.writes")

    def _quarantine(self, path: Path, exc: BaseException) -> None:
        try:
            path.unlink()
        except OSError:
            return
        get_telemetry().inc("checkpoint.quarantined")
        if not self._quarantine_logged:
            self._quarantine_logged = True
            LOGGER.warning(
                "quarantined corrupt checkpoint entry %s (%r); the cell will "
                "be recomputed (further quarantines logged at DEBUG)",
                path.name, exc,
            )
        else:
            LOGGER.debug("quarantined corrupt checkpoint entry %s (%r)", path.name, exc)

    def clear(self) -> None:
        """Delete every journal entry."""
        if self.directory.is_dir():
            for entry in self.directory.glob("*.pkl"):
                try:
                    entry.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.pkl"))
