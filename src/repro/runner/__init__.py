"""Parallel sweep-execution subsystem.

* :mod:`repro.runner.sweep` — :class:`SweepRunner`: deterministic
  (point × replication) grids fanned over a process pool with
  position-derived seeds and ordered result collection.

The sweep experiments (``parameter_sweep``, ``loss_sweep``, ``fig_6_3``,
``fig_6_4``, ``uniformity_exp``, ``independence_exp``) all accept a
``jobs`` argument that routes their grid through this layer; the CLI
exposes it as ``--jobs``.
"""

from repro.runner.sweep import (
    GridCell,
    SweepError,
    SweepRunner,
    default_jobs,
    derive_seeds,
    run_sweep,
)

__all__ = [
    "GridCell",
    "SweepError",
    "SweepRunner",
    "default_jobs",
    "derive_seeds",
    "run_sweep",
]
