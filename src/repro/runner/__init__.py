"""Fault-tolerant parallel sweep-execution subsystem.

* :mod:`repro.runner.sweep` — :class:`SweepRunner`: deterministic
  (point × replication) grids fanned over a process pool with
  position-derived seeds, ordered result collection, per-cell retries
  with exponential backoff, ``on_error`` policies (``raise`` / ``retry``
  / ``skip`` + :class:`FailureReport`), per-cell timeouts, and
  BrokenProcessPool recovery.
* :mod:`repro.runner.checkpoint` — :class:`CheckpointStore`: an opt-in
  atomic on-disk journal of completed cells, so interrupted sweeps
  resume bit-identically.
* :mod:`repro.runner.chaos` — :class:`ChaosWorker` / :class:`FaultSpec`:
  deterministic injection of exceptions, hangs, and process kills for
  exercising every recovery path without flakiness.

The sweep experiments (``parameter_sweep``, ``loss_sweep``, ``fig_6_3``,
``fig_6_4``, ``uniformity_exp``, ``independence_exp``) all accept a
``jobs`` argument (CLI ``--jobs``) and a preconfigured ``runner=`` that
routes their grid through this layer; the CLI exposes the failure knobs
as ``--on-error``, ``--cell-timeout``, and ``--checkpoint-dir``.
"""

from repro.runner.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStats,
    CheckpointStore,
    worker_token,
)
from repro.runner.chaos import (
    ChaosError,
    ChaosSetupError,
    ChaosWorker,
    FaultSpec,
)
from repro.runner.sweep import (
    CellTimeout,
    FailureReport,
    GridCell,
    PoolCrashError,
    SweepError,
    SweepRunner,
    SweepStats,
    default_jobs,
    derive_seeds,
    run_sweep,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CellTimeout",
    "ChaosError",
    "ChaosSetupError",
    "ChaosWorker",
    "CheckpointStats",
    "CheckpointStore",
    "FailureReport",
    "FaultSpec",
    "GridCell",
    "PoolCrashError",
    "SweepError",
    "SweepRunner",
    "SweepStats",
    "default_jobs",
    "derive_seeds",
    "run_sweep",
    "worker_token",
]
