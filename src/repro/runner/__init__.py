"""Fault-tolerant parallel sweep-execution subsystem.

* :mod:`repro.runner.sweep` — :class:`SweepRunner`: deterministic
  (point × replication) grids with position-derived seeds, ordered
  result collection, per-cell retries with exponential backoff,
  ``on_error`` policies (``raise`` / ``retry`` / ``skip`` +
  :class:`FailureReport`), per-cell timeouts, and BrokenProcessPool
  recovery.
* :mod:`repro.runner.backends` — :class:`ExecutionBackend`: the dispatch
  seam.  :class:`InlineBackend` runs cells in-process,
  :class:`ProcessPoolBackend` fans out over a process pool with the full
  fault-tolerance machinery, and :class:`FuturesBackend` adapts any
  ``concurrent.futures``-compatible executor — all bit-identical for
  pure workers.
* :mod:`repro.runner.checkpoint` — :class:`CheckpointStore`: an opt-in
  atomic on-disk journal of completed cells, so interrupted sweeps
  resume bit-identically; with ``coordinate=True`` it doubles as the
  lease-based coordination fabric that lets several dispatcher
  processes partition one grid (:func:`gc_store` prunes entries the
  current code can no longer resume from).
* :mod:`repro.runner.chaos` — :class:`ChaosWorker` / :class:`FaultSpec`:
  deterministic injection of exceptions, hangs, and process kills for
  exercising every recovery path without flakiness.

Every registered experiment (see :mod:`repro.experiments.registry`)
executes its point grid through this layer — ``registry.execute`` is
grid → :meth:`SweepRunner.run` → aggregate — so all of them accept a
``jobs``/``runner=`` argument and inherit the CLI's failure knobs
(``--jobs``, ``--executor``, ``--on-error``, ``--cell-timeout``,
``--checkpoint-dir``, ``--coordinate``).
"""

from repro.runner.backends import (
    ExecutionBackend,
    FuturesBackend,
    InlineBackend,
    ProcessPoolBackend,
    resolve_backend,
)
from repro.runner.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStats,
    CheckpointStore,
    GCReport,
    gc_store,
    worker_token,
)
from repro.runner.chaos import (
    ChaosError,
    ChaosSetupError,
    ChaosWorker,
    FaultSpec,
)
from repro.runner.sweep import (
    CellTimeout,
    FailureReport,
    GridCell,
    PoolCrashError,
    SweepError,
    SweepRunner,
    SweepStats,
    default_jobs,
    derive_seeds,
    run_sweep,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CellTimeout",
    "ChaosError",
    "ChaosSetupError",
    "ChaosWorker",
    "CheckpointStats",
    "CheckpointStore",
    "ExecutionBackend",
    "FailureReport",
    "FaultSpec",
    "FuturesBackend",
    "GCReport",
    "GridCell",
    "InlineBackend",
    "PoolCrashError",
    "ProcessPoolBackend",
    "SweepError",
    "SweepRunner",
    "SweepStats",
    "default_jobs",
    "derive_seeds",
    "gc_store",
    "resolve_backend",
    "run_sweep",
    "worker_token",
]
