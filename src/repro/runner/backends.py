"""Pluggable execution backends for the sweep runner.

:class:`repro.runner.SweepRunner` owns sweep *policy* — grid order,
seed derivation, retries, ``on_error`` settlement, checkpointing,
telemetry — while this module owns sweep *dispatch*: how a batch of
cells actually gets executed.  The seam is :class:`ExecutionBackend`,
with three implementations:

* :class:`InlineBackend` — cells run synchronously in the dispatching
  process; no pickling requirement, zero overhead.  The historical
  ``jobs <= 1`` path.
* :class:`ProcessPoolBackend` — cells fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with the full
  fault-tolerance machinery: per-cell deadline enforcement (a hung
  worker is killed by rebuilding the pool), ``BrokenProcessPool``
  recovery (bounded rebuilds, in-flight cells requeued), and crash
  settlement.  The historical ``jobs > 1`` path.
* :class:`FuturesBackend` — cells run on *any*
  ``concurrent.futures``-compatible executor (a
  :class:`~concurrent.futures.ThreadPoolExecutor` today, an SSH or
  cluster executor tomorrow).  Generic executors cannot be killed and
  rebuilt, so deadline enforcement and crash recovery are advertised
  off via the capability flags; everything else — retries, backoff,
  ``on_error`` policies, ordered collection — works identically.

Because every backend settles cells through the same runner policy
callbacks and results land in grid slots, a pure worker produces
**bit-identical** output on every backend, at any parallelism — the
same guarantee the runner has always made for ``jobs=1`` vs ``jobs=N``.

Backends are selected by :func:`resolve_backend` (the ``executor=``
argument of :class:`~repro.runner.SweepRunner` and the CLI's
``--executor`` flag): ``"auto"`` keeps the historical jobs-based choice,
``"inline"``/``"process"``/``"thread"`` force a backend, and any
:class:`ExecutionBackend` instance is used as-is.
"""

from __future__ import annotations

import heapq
import logging
import time
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Union

from repro.obs import get_telemetry
from repro.obs.profile import phase
from repro.obs.worker import MeteredResult, MeteredWorker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports us)
    from repro.runner.sweep import GridCell, SweepRunner, SweepWorker

LOGGER = logging.getLogger("repro.runner")

#: Longest sleep while the loop is only waiting on retry backoff.
_IDLE_TICK = 0.25

#: Names accepted by :func:`resolve_backend` (besides ``"auto"``).
BACKEND_NAMES = ("inline", "process", "thread")


class CellTimeout(RuntimeError):
    """A cell exceeded ``cell_timeout``; raised parent-side, never in the worker."""


class PoolCrashError(RuntimeError):
    """The executor crashed more than ``max_pool_rebuilds`` times."""


class _CellState:
    """Per-cell failure bookkeeping (attempts, crashes, errors, wall time)."""

    __slots__ = ("cell", "attempts", "crashes", "errors", "elapsed", "submitted")

    def __init__(self, cell: "GridCell"):
        self.cell = cell
        self.attempts = 0  # worker raises + timeouts
        self.crashes = 0   # pool crashes while in flight (blame uncertain)
        self.errors: List[str] = []
        self.elapsed = 0.0
        self.submitted = 0.0

    def charged(self) -> int:
        return self.attempts + self.crashes


class _PhasedWorker:
    """In-process wrapper recording ``phase.cell_run`` around a worker call.

    The futures loop submits through this for in-process executors
    (threads), mirroring the inline path's ``with phase("cell_run")`` —
    worker metrics land directly in the parent registry, no snapshot
    shipping needed.  Advertises the wrapped worker's checkpoint token.
    """

    def __init__(self, worker: "SweepWorker"):
        from repro.runner.checkpoint import worker_token

        self.worker = worker
        self.checkpoint_token = worker_token(worker)

    def __call__(self, cell: "GridCell", context: Any) -> Any:
        with phase("cell_run"):
            return self.worker(cell, context)


class ExecutionBackend(ABC):
    """How a batch of sweep cells is dispatched and collected.

    Subclasses implement :meth:`run_cells`; the ``runner`` argument is
    the :class:`~repro.runner.SweepRunner` whose policy callbacks
    (``_handle_failure``, ``_record_success``, ``_skip``, ``_notify``)
    settle each execution.  Capability flags tell the runner what the
    backend can honor:

    Attributes:
        name: short identifier recorded in ``SweepStats.backend`` and
            the ``sweep.start`` trace record.
        out_of_process: workers run in other processes — the parent
            registry is unreachable, so workers are wrapped in
            :class:`~repro.obs.worker.MeteredWorker` when metrics are on
            and their snapshots merged deterministically afterwards.
        enforces_deadlines: ``cell_timeout`` is honored (requires the
            ability to kill a running cell).
        recovers_crashes: a :class:`~concurrent.futures.BrokenExecutor`
            is survivable by rebuilding the executor.
    """

    name: str = "abstract"
    out_of_process: bool = False
    enforces_deadlines: bool = False
    recovers_crashes: bool = False

    @abstractmethod
    def run_cells(
        self,
        runner: "SweepRunner",
        worker: "SweepWorker",
        cells: List["GridCell"],
        context: Any,
        results: List[Any],
        done: int,
        total: int,
        keys: Dict[int, str],
    ) -> None:
        """Execute ``cells``, settling each through the runner's policy."""

    def describe(self) -> str:
        return self.name


class InlineBackend(ExecutionBackend):
    """Run every cell synchronously in the dispatching process."""

    name = "inline"

    def run_cells(
        self,
        runner: "SweepRunner",
        worker: "SweepWorker",
        cells: List["GridCell"],
        context: Any,
        results: List[Any],
        done: int,
        total: int,
        keys: Dict[int, str],
    ) -> None:
        if runner.cell_timeout is not None:
            LOGGER.warning(
                "cell_timeout is not enforced by the %s backend; "
                "running without deadlines", self.name,
            )
        for cell in cells:
            state = _CellState(cell)
            retry_delay = [0.0]

            def _requeue(_cell: "GridCell", delay: float) -> None:
                retry_delay[0] = delay

            while True:
                if retry_delay[0] > 0.0:
                    time.sleep(retry_delay[0])
                    retry_delay[0] = 0.0
                started = time.monotonic()
                try:
                    with phase("cell_run"):
                        result = worker(cell, context)
                except Exception as exc:
                    state.elapsed += time.monotonic() - started
                    if runner._handle_failure(cell, exc, state, results, _requeue):
                        break  # skipped
                else:
                    state.elapsed += time.monotonic() - started
                    runner._record_success(cell, result, results, keys)
                    runner._emit_cell_end(cell, "ok", state.elapsed)
                    break
            done += 1
            runner._notify(cell, results[cell.index], done, total)


class FuturesBackend(ExecutionBackend):
    """Dispatch cells to any ``concurrent.futures``-compatible executor.

    Args:
        executor: an :class:`~concurrent.futures.Executor` *instance*
            (used as-is; the caller owns its lifetime) or a *factory* —
            any callable returning a fresh executor, invoked as
            ``factory(max_workers=k)`` with a fallback to ``factory()``
            for executors that size themselves.  Executor classes
            (``ThreadPoolExecutor``) are factories.
        name: overrides the recorded backend name (e.g. ``"thread"``).
        out_of_process: set when the executor runs workers in other
            processes (an SSH/cluster executor) so worker metrics are
            captured via :class:`~repro.obs.worker.MeteredWorker`
            snapshots instead of direct registry writes.

    Generic executors cannot kill a running task or be rebuilt after a
    crash, so ``cell_timeout`` is ignored (with a warning) and a
    :class:`~concurrent.futures.BrokenExecutor` raises
    :class:`PoolCrashError` immediately.
    """

    name = "futures"

    def __init__(
        self,
        executor: Union[Executor, Callable[..., Executor]],
        *,
        name: Optional[str] = None,
        out_of_process: bool = False,
    ):
        if isinstance(executor, Executor):
            self._instance: Optional[Executor] = executor
            self._factory: Optional[Callable[..., Executor]] = None
        elif callable(executor):
            self._instance = None
            self._factory = executor
        else:
            raise TypeError(
                "executor must be a concurrent.futures.Executor instance "
                f"or a factory callable, got {executor!r}"
            )
        if name is not None:
            self.name = name
        self.out_of_process = bool(out_of_process)
        self._owns_executor = self._instance is None

    # -- executor lifecycle --------------------------------------------

    def _new_executor(self, max_workers: int) -> Executor:
        if self._instance is not None:
            return self._instance
        assert self._factory is not None
        try:
            return self._factory(max_workers=max_workers)
        except TypeError:
            return self._factory()

    def _shutdown(self, executor: Executor) -> None:
        """Shut an executor down without waiting on in-flight work."""
        if not self._owns_executor:
            return  # caller-owned instance: leave it running
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - Python < 3.9
            executor.shutdown(wait=False)

    def _rebuild(self, executor: Executor, max_workers: int) -> Executor:
        self._shutdown(executor)
        return self._new_executor(max_workers)

    def _prepare_worker(self, worker: "SweepWorker") -> "SweepWorker":
        """The callable actually submitted (metric capture wrapping)."""
        if not get_telemetry().metrics_on:
            return worker
        if self.out_of_process:
            # The parent registry is unreachable from the worker; ship a
            # snapshot back and merge it deterministically afterwards.
            return MeteredWorker(worker)
        # In-process executor: record straight into the parent registry,
        # like the inline path (the registry is thread-safe).
        return _PhasedWorker(worker)

    # -- the dispatch loop ---------------------------------------------

    def run_cells(
        self,
        runner: "SweepRunner",
        worker: "SweepWorker",
        cells: List["GridCell"],
        context: Any,
        results: List[Any],
        done: int,
        total: int,
        keys: Dict[int, str],
    ) -> None:
        if runner.cell_timeout is not None and not self.enforces_deadlines:
            LOGGER.warning(
                "cell_timeout is not enforced by the %s backend; "
                "running without deadlines", self.name,
            )
        max_workers = min(runner.jobs, len(cells))
        # The wrapper advertises the bare worker's checkpoint token, so
        # journal keys (already computed in keys) stay valid either way.
        submit_worker = self._prepare_worker(worker)
        pending: deque = deque(cells)
        waiting: List[Tuple[float, int, "GridCell"]] = []  # (ready_at, idx, cell)
        states = {cell.index: _CellState(cell) for cell in cells}
        inflight: Dict[Future, "GridCell"] = {}
        rebuilds = 0

        def _requeue(cell: "GridCell", delay: float) -> None:
            heapq.heappush(waiting, (time.monotonic() + delay, cell.index, cell))

        executor = self._new_executor(max_workers)
        try:
            while pending or waiting or inflight:
                now = time.monotonic()
                while waiting and waiting[0][0] <= now:
                    _, _, ready_cell = heapq.heappop(waiting)
                    pending.append(ready_cell)
                # Cap outstanding submissions at the worker count: in-flight
                # cells are then (almost) the running set, which keeps the
                # blame set small when the executor crashes.
                while pending and len(inflight) < max_workers:
                    cell = pending.popleft()
                    future = executor.submit(submit_worker, cell, context)
                    inflight[future] = cell
                    states[cell.index].submitted = time.monotonic()
                if not inflight:
                    # Everything is waiting out a retry backoff.
                    pause = max(0.0, waiting[0][0] - time.monotonic())
                    time.sleep(min(pause, _IDLE_TICK))
                    continue

                finished, _ = wait(
                    set(inflight),
                    timeout=self._wait_timeout(runner, waiting, inflight, states),
                    return_when=FIRST_COMPLETED,
                )
                crash: Optional[BaseException] = None
                for future in finished:
                    cell = inflight[future]
                    try:
                        result = future.result()
                    except BrokenExecutor as exc:
                        # Executor is dead: every in-flight future fails
                        # with this; handle them wholesale below.
                        crash = exc
                        break
                    except Exception as exc:
                        del inflight[future]
                        state = states[cell.index]
                        state.elapsed += time.monotonic() - state.submitted
                        if runner._handle_failure(
                            cell, exc, state, results, _requeue
                        ):
                            done += 1
                            runner._notify(cell, None, done, total)
                    else:
                        del inflight[future]
                        if isinstance(result, MeteredResult):
                            runner._worker_metrics[cell.index] = result.metrics
                            result = result.value
                        state = states[cell.index]
                        state.elapsed += time.monotonic() - state.submitted
                        runner._record_success(cell, result, results, keys)
                        runner._emit_cell_end(cell, "ok", state.elapsed)
                        done += 1
                        runner._notify(cell, result, done, total)

                if crash is not None:
                    rebuilds += 1
                    runner.last_stats.pool_rebuilds += 1
                    get_telemetry().event("pool.rebuild", reason="crash")
                    if not self.recovers_crashes:
                        raise PoolCrashError(
                            f"the {self.name} executor broke ({crash!r}) and "
                            "this backend cannot rebuild it"
                        ) from crash
                    LOGGER.warning(
                        "worker process died (%r); rebuilding pool (%d/%d), "
                        "requeueing %d in-flight cell(s); %d completed result(s) kept",
                        crash, rebuilds, runner.max_pool_rebuilds, len(inflight),
                        runner.last_stats.completed,
                    )
                    if rebuilds > runner.max_pool_rebuilds:
                        raise PoolCrashError(
                            f"process pool crashed {rebuilds} times "
                            f"(max_pool_rebuilds={runner.max_pool_rebuilds}); "
                            f"last crash: {crash!r}"
                        ) from crash
                    executor = self._rebuild(executor, max_workers)
                    done = self._settle_crashed(
                        runner, crash, inflight, states, pending, results,
                        done, total,
                    )
                    continue

                if (
                    self.enforces_deadlines
                    and runner.cell_timeout is not None
                    and inflight
                ):
                    done, executor = self._enforce_deadlines(
                        runner, executor, max_workers, inflight, states,
                        pending, results, done, total, _requeue,
                    )
        finally:
            self._shutdown(executor)

    def _wait_timeout(
        self,
        runner: "SweepRunner",
        waiting: List[Tuple[float, int, "GridCell"]],
        inflight: Dict[Future, "GridCell"],
        states: Dict[int, _CellState],
    ) -> Optional[float]:
        """How long ``wait`` may block before a deadline or retry is due."""
        now = time.monotonic()
        candidates = []
        if (
            self.enforces_deadlines
            and runner.cell_timeout is not None
            and inflight
        ):
            soonest = min(
                states[cell.index].submitted for cell in inflight.values()
            )
            candidates.append(max(0.0, soonest + runner.cell_timeout - now))
        if waiting:
            candidates.append(max(0.0, waiting[0][0] - now))
        if not candidates:
            return None
        return min(candidates) + 0.01

    def _settle_crashed(
        self,
        runner: "SweepRunner",
        crash: BaseException,
        inflight: Dict[Future, "GridCell"],
        states: Dict[int, _CellState],
        pending: deque,
        results: List[Any],
        done: int,
        total: int,
    ) -> int:
        """Requeue or settle every cell that was in flight during a crash.

        The crashed cell cannot be told apart from its in-flight
        neighbors, so each gets a crash charge; a cell over its
        ``crash_retries`` budget is settled per ``on_error``.
        """
        from repro.runner.sweep import SweepError

        now = time.monotonic()
        for cell in inflight.values():
            state = states[cell.index]
            state.crashes += 1
            state.elapsed += now - state.submitted
            state.errors.append(repr(crash))
            if state.crashes <= runner.crash_retries:
                pending.append(cell)
            elif runner.on_error == "skip":
                runner._skip(cell, state, results)
                done += 1
                runner._notify(cell, None, done, total)
            else:
                raise SweepError(
                    cell, crash, attempts=state.charged()
                ) from crash
        inflight.clear()
        return done

    def _enforce_deadlines(
        self,
        runner: "SweepRunner",
        executor: Executor,
        max_workers: int,
        inflight: Dict[Future, "GridCell"],
        states: Dict[int, _CellState],
        pending: deque,
        results: List[Any],
        done: int,
        total: int,
        requeue: Callable[["GridCell", float], None],
    ) -> Tuple[int, Executor]:
        """Kill the executor if any in-flight cell is over its deadline.

        A running task cannot be cancelled, so deadline enforcement means
        rebuilding the executor: the overdue cells are charged a timeout
        attempt and retried/skipped/raised per policy, while the other
        in-flight cells are requeued uncharged.
        """
        now = time.monotonic()
        overdue = {
            cell.index
            for future, cell in inflight.items()
            if not future.done()
            and now - states[cell.index].submitted >= runner.cell_timeout
        }
        if not overdue:
            return done, executor
        runner.last_stats.timeouts += len(overdue)
        tel = get_telemetry()
        if tel.tracing_on:
            tel.event("pool.rebuild", reason="timeout")
            for index in sorted(overdue):
                tel.event(
                    "cell.timeout",
                    index=index,
                    elapsed_s=round(now - states[index].submitted, 6),
                )
        LOGGER.warning(
            "%d cell(s) exceeded cell_timeout=%.3gs; killing the pool "
            "and requeueing %d innocent in-flight cell(s)",
            len(overdue), runner.cell_timeout, len(inflight) - len(overdue),
        )
        executor = self._rebuild(executor, max_workers)
        for future, cell in list(inflight.items()):
            state = states[cell.index]
            state.elapsed += now - state.submitted
            if cell.index in overdue:
                exc = CellTimeout(
                    f"cell {cell.index} (point={cell.point!r}) exceeded "
                    f"cell_timeout={runner.cell_timeout}s"
                )
                if runner._handle_failure(cell, exc, state, results, requeue):
                    done += 1
                    runner._notify(cell, None, done, total)
            else:
                pending.append(cell)
        inflight.clear()
        return done, executor


class ProcessPoolBackend(FuturesBackend):
    """The fully fault-tolerant process-pool backend (historical default).

    Workers run in a :class:`~concurrent.futures.ProcessPoolExecutor`
    and must be picklable module-level callables.  On top of the generic
    futures loop this backend enforces per-cell deadlines and survives
    ``BrokenProcessPool`` crashes by rebuilding the pool — both require
    the ability to kill worker processes, which is why only this backend
    advertises those capabilities.
    """

    name = "process-pool"
    out_of_process = True
    enforces_deadlines = True
    recovers_crashes = True

    def __init__(self) -> None:
        super().__init__(
            ProcessPoolExecutor, name=self.name, out_of_process=True
        )

    def _shutdown(self, executor: Executor) -> None:
        """Shut a pool down without waiting on (possibly hung) workers."""
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - Python < 3.9
            executor.shutdown(wait=False)
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                if process.is_alive():
                    process.terminate()
            except Exception:  # pragma: no cover - already-reaped process
                pass


def resolve_backend(
    executor: Union[None, str, ExecutionBackend], jobs: int
) -> ExecutionBackend:
    """The :class:`ExecutionBackend` for an ``executor=`` specification.

    ``None`` or ``"auto"`` keeps the historical behavior: inline at
    ``jobs <= 1``, a process pool otherwise.  ``"inline"``,
    ``"process"`` (alias ``"process-pool"``) and ``"thread"`` (alias
    ``"threads"``) force a backend regardless of ``jobs``; an
    :class:`ExecutionBackend` instance is returned as-is.
    """
    if isinstance(executor, ExecutionBackend):
        return executor
    if executor is None or executor == "auto":
        return InlineBackend() if jobs <= 1 else ProcessPoolBackend()
    if executor == "inline":
        return InlineBackend()
    if executor in ("process", "process-pool"):
        return ProcessPoolBackend()
    if executor in ("thread", "threads"):
        return FuturesBackend(ThreadPoolExecutor, name="thread")
    raise ValueError(
        f"unknown executor {executor!r}; expected 'auto', one of "
        f"{BACKEND_NAMES}, or an ExecutionBackend instance"
    )
