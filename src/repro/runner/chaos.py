"""Deterministic fault injection for sweep workers.

The fault-tolerance machinery in :mod:`repro.runner.sweep` exists to
survive worker exceptions, hangs, and killed processes.  Testing those
paths with real OOM kills or random sleeps would be flaky; this module
makes the faults *deterministic* instead: :class:`ChaosWorker` wraps a
real sweep worker and injects a scripted fault — an exception, a hang,
or a hard ``os._exit`` process kill — for chosen cells, on chosen
attempts, and nothing else.

Determinism has two parts:

* **which cells fault** is a pure function of the cell: either an
  explicit index list or a modulus test on the cell's position-derived
  seed (``seed_mod``), so the same grid faults the same way every run,
  at any ``jobs``;
* **which attempts fault** is tracked with ``O_CREAT | O_EXCL`` marker
  files in a shared ``state_dir``, the one attempt counter that survives
  both process-pool workers and workers that die mid-cell (a counter in
  worker memory would reset with the process that ``os._exit`` just
  killed).

A :class:`ChaosWorker` perturbs *execution only* — when it does run the
wrapped worker, the result is untouched.  It therefore advertises the
wrapped worker's checkpoint identity via ``checkpoint_token``, so cells
journaled during a chaotic run resume under the plain worker (this is
exactly the interrupted-sweep-resumes-bit-identical acceptance test).

``kill`` faults use ``os._exit``, which skips all cleanup — only ever
meaningful under ``jobs > 1``, where it simulates an OOM-killed pool
worker.  Injecting a kill into an inline run would take the parent
process with it, so :class:`ChaosWorker` refuses with
:class:`ChaosSetupError` when it detects it is running in the main
process.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from repro.runner.checkpoint import worker_token
from repro.runner.sweep import GridCell, SweepWorker

LOGGER = logging.getLogger("repro.runner.chaos")

#: Exit status used by ``kill`` faults — distinctive in pool tracebacks.
KILL_EXIT_CODE = 87

FAULT_KINDS = ("error", "hang", "kill")


class ChaosError(RuntimeError):
    """The injected worker exception (``kind="error"``)."""


class ChaosSetupError(RuntimeError):
    """A fault plan that cannot be executed safely (e.g. inline kill)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault.

    Attributes:
        kind: ``"error"`` (raise :class:`ChaosError`), ``"hang"`` (sleep
            ``hang_seconds``), or ``"kill"`` (``os._exit`` the worker
            process).
        indices: cell indices to fault, or ``None`` to select by seed.
        seed_mod: ``(m, r)`` — fault cells whose seed satisfies
            ``seed % m == r`` (ignored for unseeded cells); a
            grid-position-deterministic selector that needs no knowledge
            of the grid size.
        times: inject on the first ``times`` attempts of each selected
            cell, then let the wrapped worker run (``times < 0`` means
            every attempt — a permanent fault).
        hang_seconds: sleep length for ``"hang"`` faults; keep it above
            the runner's ``cell_timeout`` but finite, so an unkilled
            sleeper cannot outlive the test run by much.
    """

    kind: str
    indices: Optional[Tuple[int, ...]] = None
    seed_mod: Optional[Tuple[int, int]] = None
    times: int = 1
    hang_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.indices is None and self.seed_mod is None:
            raise ValueError("FaultSpec needs indices or seed_mod to select cells")

    def selects(self, cell: GridCell) -> bool:
        """Whether this fault targets ``cell`` (pure function of the cell)."""
        if self.indices is not None and cell.index in self.indices:
            return True
        if self.seed_mod is not None and cell.seed is not None:
            modulus, remainder = self.seed_mod
            return cell.seed % modulus == remainder
        return False


class ChaosWorker:
    """Picklable wrapper injecting scripted faults around a sweep worker.

    Args:
        worker: the real worker; must itself be picklable for ``jobs > 1``.
        faults: the fault script, applied in order — the first fault that
            selects the cell *and* still has attempts left fires.
        state_dir: directory for cross-process attempt markers; one
            directory corresponds to one run's fault history, so tests
            use a fresh temporary directory per sweep.
    """

    def __init__(
        self,
        worker: SweepWorker,
        faults: Tuple[FaultSpec, ...],
        state_dir: Union[str, Path],
    ):
        self.worker = worker
        self.faults = tuple(faults)
        self.state_dir = Path(state_dir)
        # Execution-only perturbation: journal under the wrapped worker's
        # identity so chaotic runs and clean runs share checkpoints.
        self.checkpoint_token = worker_token(worker)

    def __call__(self, cell: GridCell, context: Any) -> Any:
        for position, fault in enumerate(self.faults):
            if not fault.selects(cell):
                continue
            attempt = self._claim_attempt(cell, position)
            if fault.times >= 0 and attempt > fault.times:
                continue
            self._inject(fault, cell, attempt)
        return self.worker(cell, context)

    def _claim_attempt(self, cell: GridCell, fault_position: int) -> int:
        """Atomically claim this execution's attempt number for a fault.

        Attempt ``k`` is claimed by exclusively creating marker file
        ``cell<i>-fault<p>-attempt<k>``; ``O_CREAT | O_EXCL`` makes the
        claim race-free across pool workers, and the files survive
        ``os._exit``, which is the whole point.
        """
        self.state_dir.mkdir(parents=True, exist_ok=True)
        attempt = 1
        while True:
            marker = self.state_dir / f"cell{cell.index}-fault{fault_position}-attempt{attempt}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                attempt += 1
                continue
            os.close(fd)
            return attempt

    def _inject(self, fault: FaultSpec, cell: GridCell, attempt: int) -> None:
        LOGGER.debug(
            "injecting %s into cell %d (attempt %d)", fault.kind, cell.index, attempt
        )
        if fault.kind == "error":
            raise ChaosError(
                f"injected fault: cell {cell.index} attempt {attempt}"
            )
        if fault.kind == "hang":
            time.sleep(fault.hang_seconds)
            return
        # kill
        if multiprocessing.current_process().name == "MainProcess":
            raise ChaosSetupError(
                "refusing to os._exit the main process: kill faults are only "
                "meaningful under jobs > 1 (they simulate a dead pool worker)"
            )
        os._exit(KILL_EXIT_CODE)
