"""Parallel sweep execution: fan a (point × replication) grid over processes.

Every sweep experiment in this repository has the same shape — a grid of
parameter points, optionally replicated over independent seeds, with one
pure worker call per cell.  :class:`SweepRunner` owns that shape once:

* **grid construction** — cells are enumerated in deterministic order
  (points outer, replications inner) and each carries its flat index;
* **seed derivation** — per-cell seeds come from
  ``numpy.random.SeedSequence(seed).spawn(...)`` by default, so they
  depend only on the cell's grid position, never on scheduling; an
  experiment that must preserve a historical derivation (e.g. the legacy
  ``seed + replication``) passes ``seed_fn`` instead;
* **execution** — ``jobs <= 1`` runs inline (no pickling requirement,
  zero overhead); ``jobs > 1`` submits cells to a
  :class:`concurrent.futures.ProcessPoolExecutor`;
* **ordered collection** — results are returned in grid order regardless
  of completion order, which is what makes ``jobs=1`` and ``jobs=4``
  bit-identical for pure workers;
* **hooks** — an optional ``progress`` callback fires per completed cell
  (in completion order) and a ``repro.runner`` logger records timing.

Workers submitted with ``jobs > 1`` must be module-level callables and
their arguments picklable — the standard multiprocessing constraint.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

LOGGER = logging.getLogger("repro.runner")

#: Signature of a sweep worker: ``worker(cell, context) -> result``.
SweepWorker = Callable[["GridCell", Any], Any]

#: Signature of the per-completion progress hook:
#: ``progress(cell, result, done, total)``.
ProgressHook = Callable[["GridCell", Any, int, int], None]


@dataclass(frozen=True)
class GridCell:
    """One unit of sweep work: a parameter point × replication slot.

    Attributes:
        index: flat position in grid order — results are collected here.
        point: the parameter point (any picklable value).
        replication: replication number in ``range(replications)``.
        seed: derived integer seed for this cell (``None`` when the sweep
            is unseeded).
    """

    index: int
    point: Any
    replication: int
    seed: Optional[int]


class SweepError(RuntimeError):
    """A worker raised; carries the failing cell for diagnosis."""

    def __init__(self, cell: GridCell, cause: BaseException):
        super().__init__(
            f"sweep worker failed at point={cell.point!r} "
            f"replication={cell.replication} (cell {cell.index}): {cause!r}"
        )
        self.cell = cell


def default_jobs() -> int:
    """A reasonable ``jobs`` for "use the machine": CPU count, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def derive_seeds(
    seed: Optional[int], count: int
) -> List[Optional[int]]:
    """``count`` independent integer seeds from ``seed`` via ``SeedSequence``.

    Position-determined: cell ``i`` always receives the same seed for a
    given base seed, whatever the execution order or worker count.
    ``None`` propagates (unseeded sweeps stay unseeded).
    """
    if seed is None:
        return [None] * count
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(2, np.uint64)[0]) for child in children]


class SweepRunner:
    """Run a sweep worker over a parameter grid, serially or in processes.

    Args:
        jobs: worker processes; ``None`` or ``<= 1`` runs inline in this
            process.  (Use :func:`default_jobs` for "all the machine".)
        progress: optional per-completion hook
            ``progress(cell, result, done, total)``.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        progress: Optional[ProgressHook] = None,
    ):
        self.jobs = 1 if jobs is None else max(1, int(jobs))
        self.progress = progress

    def run(
        self,
        worker: SweepWorker,
        points: Sequence[Any],
        *,
        replications: int = 1,
        seed: Optional[int] = None,
        seed_fn: Optional[Callable[[Any, int], Optional[int]]] = None,
        context: Any = None,
    ) -> List[Any]:
        """Execute ``worker`` over every (point × replication) cell.

        ``seed_fn(point, replication)`` overrides the default
        ``SeedSequence.spawn`` derivation — it runs in the parent, so
        closures are fine even with ``jobs > 1``.  ``context`` is passed
        verbatim to every worker call (shared configuration).

        Returns results in grid order (points outer, replications inner).
        Raises :class:`SweepError` if any worker raises.
        """
        if replications <= 0:
            raise ValueError(f"replications must be positive, got {replications}")
        cells = self._build_cells(points, replications, seed, seed_fn)
        if not cells:
            return []
        start = time.perf_counter()
        LOGGER.debug(
            "sweep start: %d points x %d replications, jobs=%d",
            len(points), replications, self.jobs,
        )
        if self.jobs <= 1:
            results = self._run_inline(worker, cells, context)
        else:
            results = self._run_pool(worker, cells, context)
        LOGGER.debug(
            "sweep done: %d cells in %.3fs", len(cells), time.perf_counter() - start
        )
        return results

    # ------------------------------------------------------------------

    @staticmethod
    def _build_cells(
        points: Sequence[Any],
        replications: int,
        seed: Optional[int],
        seed_fn: Optional[Callable[[Any, int], Optional[int]]],
    ) -> List[GridCell]:
        total = len(points) * replications
        if seed_fn is None:
            seeds = derive_seeds(seed, total)
        else:
            seeds = [
                seed_fn(point, replication)
                for point in points
                for replication in range(replications)
            ]
        return [
            GridCell(
                index=i * replications + r,
                point=point,
                replication=r,
                seed=seeds[i * replications + r],
            )
            for i, point in enumerate(points)
            for r in range(replications)
        ]

    def _notify(self, cell: GridCell, result: Any, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(cell, result, done, total)

    def _run_inline(
        self, worker: SweepWorker, cells: List[GridCell], context: Any
    ) -> List[Any]:
        results: List[Any] = []
        for done, cell in enumerate(cells, start=1):
            try:
                result = worker(cell, context)
            except Exception as exc:
                raise SweepError(cell, exc) from exc
            results.append(result)
            self._notify(cell, result, done, len(cells))
        return results

    def _run_pool(
        self, worker: SweepWorker, cells: List[GridCell], context: Any
    ) -> List[Any]:
        results: List[Any] = [None] * len(cells)
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(cells))) as pool:
            futures = {
                pool.submit(worker, cell, context): cell for cell in cells
            }
            done = 0
            for future in as_completed(futures):
                cell = futures[future]
                try:
                    result = future.result()
                except Exception as exc:
                    raise SweepError(cell, exc) from exc
                results[cell.index] = result
                done += 1
                self._notify(cell, result, done, len(cells))
        return results


def run_sweep(
    worker: SweepWorker,
    points: Sequence[Any],
    *,
    jobs: Optional[int] = None,
    replications: int = 1,
    seed: Optional[int] = None,
    seed_fn: Optional[Callable[[Any, int], Optional[int]]] = None,
    context: Any = None,
    progress: Optional[ProgressHook] = None,
) -> List[Any]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(jobs=jobs, progress=progress).run(
        worker,
        points,
        replications=replications,
        seed=seed,
        seed_fn=seed_fn,
        context=context,
    )
