"""Fault-tolerant parallel sweep execution over a (point × replication) grid.

Every sweep experiment in this repository has the same shape — a grid of
parameter points, optionally replicated over independent seeds, with one
pure worker call per cell.  :class:`SweepRunner` owns that shape once:

* **grid construction** — cells are enumerated in deterministic order
  (points outer, replications inner) and each carries its flat index;
* **seed derivation** — per-cell seeds come from
  ``numpy.random.SeedSequence(seed).spawn(...)`` by default, so they
  depend only on the cell's grid position, never on scheduling; an
  experiment that must preserve a historical derivation (e.g. the legacy
  ``seed + replication``) passes ``seed_fn`` instead;
* **execution** — dispatch happens behind the
  :class:`repro.runner.backends.ExecutionBackend` seam: ``jobs <= 1``
  selects the inline backend (no pickling requirement, zero overhead),
  ``jobs > 1`` a :class:`~concurrent.futures.ProcessPoolExecutor`
  backend, and ``executor=`` forces any backend (``"inline"``,
  ``"process"``, ``"thread"``, or an
  :class:`~repro.runner.backends.ExecutionBackend` instance);
* **ordered collection** — results are returned in grid order regardless
  of completion order, which is what makes every backend, at any
  parallelism, bit-identical for pure workers;
* **hooks** — an optional ``progress`` callback fires per settled cell
  (in completion order) and a ``repro.runner`` logger records timing.  A
  hook that raises is logged at WARNING and never aborts the sweep.

The paper this repository reproduces is about correctness *under loss*;
the runner applies the same stance to its own execution:

* **retries with exponential backoff** — a failed cell is re-executed up
  to ``max_retries`` times, delayed ``backoff_base · backoff_factor^k``
  seconds (capped at ``backoff_max``).  Because a pure worker's result is
  a function of its cell alone, a retried cell's result is bit-identical
  to a first-try result.
* **an ``on_error`` policy** — ``"raise"`` (default, the historical
  fail-fast behavior), ``"retry"`` (retry, then raise), or ``"skip"``
  (retry, then record a :class:`FailureReport` and yield ``None`` for
  that cell instead of poisoning the whole grid).
* **per-cell timeouts** (deadline-capable backends only) — a cell
  running longer than ``cell_timeout`` seconds is treated as failed: the
  pool is rebuilt (killing the hung worker), innocent in-flight cells
  are requeued uncharged, and the overdue cell is retried/skipped/raised
  per policy.
* **BrokenProcessPool recovery** — an OOM-killed or crashed worker
  process no longer discards completed results: the pool is rebuilt (at
  most ``max_pool_rebuilds`` times per run) and in-flight cells are
  requeued, each at most ``crash_retries`` times, since the crashed cell
  cannot be told apart from its in-flight neighbors.
* **checkpoint/resume** — with a :class:`repro.runner.CheckpointStore`,
  every completed cell is journaled atomically as it lands; a re-run of
  the same grid loads journaled cells instead of recomputing them, so an
  interrupted sweep resumes where it died with bit-identical output.
* **multi-dispatcher work stealing** — with ``coordinate=True`` (and a
  checkpoint store), the store doubles as a coordination fabric:
  dispatchers claim per-cell leases before executing, adopt journaled
  results written by their peers, and steal expired leases from dead
  dispatchers, so several ``repro run`` processes sharing one
  ``--checkpoint-dir`` partition a grid without duplicating work.

Workers submitted to out-of-process backends must be module-level
callables (or picklable callable objects) and their arguments picklable
— the standard multiprocessing constraint.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import get_telemetry
from repro.runner.backends import (
    CellTimeout,
    ExecutionBackend,
    PoolCrashError,
    _CellState,
    resolve_backend,
)
from repro.runner.checkpoint import CheckpointStore, worker_token

__all__ = [
    "GridCell",
    "FailureReport",
    "SweepStats",
    "SweepError",
    "CellTimeout",
    "PoolCrashError",
    "SweepRunner",
    "default_jobs",
    "derive_seeds",
    "run_sweep",
    "ON_ERROR_POLICIES",
]

LOGGER = logging.getLogger("repro.runner")

#: Signature of a sweep worker: ``worker(cell, context) -> result``.
SweepWorker = Callable[["GridCell", Any], Any]

#: Signature of the per-completion progress hook:
#: ``progress(cell, result, done, total)``.
ProgressHook = Callable[["GridCell", Any, int, int], None]

#: Valid ``on_error`` policies.
ON_ERROR_POLICIES = ("raise", "retry", "skip")

#: How long a coordinated dispatcher sleeps between polls of cells whose
#: leases are held by a live peer.
_STEAL_POLL = 0.1


@dataclass(frozen=True)
class GridCell:
    """One unit of sweep work: a parameter point × replication slot.

    Attributes:
        index: flat position in grid order — results are collected here.
        point: the parameter point (any picklable value).
        replication: replication number in ``range(replications)``.
        seed: derived integer seed for this cell (``None`` when the sweep
            is unseeded).
    """

    index: int
    point: Any
    replication: int
    seed: Optional[int]


@dataclass(frozen=True)
class FailureReport:
    """Structured record of a cell given up on under ``on_error="skip"``.

    Attributes:
        cell: the failing cell.
        attempts: executions charged to the cell (worker raises, timeouts,
            and pool crashes while it was in flight).
        errors: ``repr`` of each failure, in order.
        wall_time: parent-observed seconds spent on the cell across all
            attempts (includes pool queueing, excludes backoff waits).
    """

    cell: GridCell
    attempts: int
    errors: Tuple[str, ...]
    wall_time: float


@dataclass
class SweepStats:
    """Execution counters for the most recent :meth:`SweepRunner.run`.

    ``backend`` names the :class:`ExecutionBackend` that dispatched the
    run; ``stolen_cells`` counts cells this dispatcher executed after
    stealing another dispatcher's released or expired lease
    (``coordinate=True`` only).
    """

    total: int = 0
    completed: int = 0
    resumed: int = 0
    retries: int = 0
    skipped: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    stolen_cells: int = 0
    backend: str = ""


class SweepError(RuntimeError):
    """A worker failed terminally; carries the failing cell for diagnosis."""

    def __init__(self, cell: GridCell, cause: BaseException, attempts: int = 1):
        super().__init__(
            f"sweep worker failed at point={cell.point!r} "
            f"replication={cell.replication} (cell {cell.index}) "
            f"after {attempts} attempt(s): {cause!r}"
        )
        self.cell = cell
        self.cause = cause
        self.attempts = attempts


def default_jobs() -> int:
    """A reasonable ``jobs`` for "use the machine".

    Honors a positive-integer ``REPRO_JOBS`` environment override
    (operators pinning sweep width fleet-wide); ``0``, unset, or
    non-numeric values fall through to the default of CPU count capped
    at 8 (beyond 8 the per-process import and pickling overhead beats
    the marginal speedup for this repository's cell sizes).
    """
    override = os.environ.get("REPRO_JOBS", "").strip()
    if override:
        try:
            value = int(override)
        except ValueError:
            LOGGER.warning(
                "ignoring non-integer REPRO_JOBS=%r; using the CPU default",
                override,
            )
        else:
            if value > 0:
                return value
    return min(os.cpu_count() or 1, 8)


def derive_seeds(
    seed: Optional[int], count: int
) -> List[Optional[int]]:
    """``count`` independent integer seeds from ``seed`` via ``SeedSequence``.

    Position-determined: cell ``i`` always receives the same seed for a
    given base seed, whatever the execution order or worker count.
    ``None`` propagates (unseeded sweeps stay unseeded).
    """
    if seed is None:
        return [None] * count
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(2, np.uint64)[0]) for child in children]


class SweepRunner:
    """Run a sweep worker over a parameter grid on a pluggable backend.

    Args:
        jobs: worker parallelism; ``None`` or ``<= 1`` selects the inline
            backend under ``executor="auto"``.  (Use :func:`default_jobs`
            for "all the machine".)
        progress: optional per-settled-cell hook
            ``progress(cell, result, done, total)``; exceptions it raises
            are logged and swallowed.
        on_error: ``"raise"`` fails fast on the first worker error (the
            historical behavior); ``"retry"`` retries each failing cell up
            to ``max_retries`` times and raises if it still fails;
            ``"skip"`` retries likewise but then records a
            :class:`FailureReport` and leaves ``None`` in that cell's slot.
        max_retries: extra executions granted per cell after its first
            failure (total attempts = ``max_retries + 1``).
        backoff_base: delay before the first retry, in seconds; retry
            ``k`` waits ``backoff_base * backoff_factor**(k-1)``.
        backoff_factor: exponential backoff multiplier.
        backoff_max: upper bound on any single backoff delay.
        cell_timeout: wall-clock budget per cell execution, in seconds.
            Enforced only by deadline-capable backends (the process
            pool) — a hung worker is killed by rebuilding the pool and
            the cell is handled per ``on_error``; other backends ignore
            the setting with a warning (nothing can preempt the call).
        checkpoint: optional :class:`repro.runner.CheckpointStore`; every
            completed cell is journaled and journaled cells are loaded
            instead of executed on re-runs.
        max_pool_rebuilds: how many worker-process crashes to survive per
            run before raising :class:`PoolCrashError`.
        crash_retries: requeues granted to a cell that was in flight
            during a pool crash (defaults to ``max_retries``); beyond it
            the cell is handled per ``on_error``.
        executor: backend selector — ``"auto"`` (default; inline at
            ``jobs <= 1``, process pool otherwise), ``"inline"``,
            ``"process"``, ``"thread"``, or an
            :class:`~repro.runner.backends.ExecutionBackend` instance.
        coordinate: share the grid with other dispatchers running
            against the same checkpoint store: cells are claimed via
            per-cell leases before execution, peer-journaled results are
            adopted, and expired leases are stolen.  Requires
            ``checkpoint``.
        lease_ttl: seconds before an unrefreshed lease is considered
            abandoned and may be stolen by another dispatcher.  Must
            exceed the worst-case wall time of one cell (including
            retries); too small risks duplicated work, too large delays
            recovery from a dead dispatcher.

    After :meth:`run`, :attr:`last_failures` holds the run's
    :class:`FailureReport` list and :attr:`last_stats` its
    :class:`SweepStats`.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        progress: Optional[ProgressHook] = None,
        *,
        on_error: str = "raise",
        max_retries: int = 2,
        backoff_base: float = 0.1,
        backoff_factor: float = 2.0,
        backoff_max: float = 30.0,
        cell_timeout: Optional[float] = None,
        checkpoint: Optional[CheckpointStore] = None,
        max_pool_rebuilds: int = 5,
        crash_retries: Optional[int] = None,
        executor: Union[None, str, ExecutionBackend] = None,
        coordinate: bool = False,
        lease_ttl: float = 300.0,
    ):
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, got {on_error!r}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError(f"cell_timeout must be positive, got {cell_timeout}")
        if max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}"
            )
        if coordinate and checkpoint is None:
            raise ValueError(
                "coordinate=True requires a checkpoint store — the store is "
                "the coordination fabric (leases + result journal)"
            )
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        self.jobs = 1 if jobs is None else max(1, int(jobs))
        self.progress = progress
        self.on_error = on_error
        self.max_retries = max_retries
        self.backoff_base = max(0.0, backoff_base)
        self.backoff_factor = max(1.0, backoff_factor)
        self.backoff_max = max(0.0, backoff_max)
        self.cell_timeout = cell_timeout
        self.checkpoint = checkpoint
        self.max_pool_rebuilds = max_pool_rebuilds
        self.crash_retries = max_retries if crash_retries is None else crash_retries
        self.executor = executor
        self.coordinate = coordinate
        self.lease_ttl = lease_ttl
        self.last_failures: List[FailureReport] = []
        self.last_stats = SweepStats()
        # Worker-process metric snapshots, keyed by cell index; merged into
        # the parent registry in index order at the end of run() so the
        # aggregate is deterministic at any jobs count.
        self._worker_metrics: Dict[int, Dict[str, Any]] = {}
        # Lease keys held while coordinating, keyed by cell index;
        # released as each cell settles (and wholesale on exit).
        self._held_leases: Dict[int, str] = {}
        self._worker_token: Optional[str] = None
        self._lease_owner: Optional[str] = None

    def run(
        self,
        worker: SweepWorker,
        points: Sequence[Any],
        *,
        replications: int = 1,
        seed: Optional[int] = None,
        seed_fn: Optional[Callable[[Any, int], Optional[int]]] = None,
        context: Any = None,
    ) -> List[Any]:
        """Execute ``worker`` over every (point × replication) cell.

        ``seed_fn(point, replication)`` overrides the default
        ``SeedSequence.spawn`` derivation — it runs in the parent, so
        closures are fine even with ``jobs > 1``.  ``context`` is passed
        verbatim to every worker call (shared configuration).

        Returns results in grid order (points outer, replications inner);
        cells skipped under ``on_error="skip"`` hold ``None`` and are
        described in :attr:`last_failures`.  Raises :class:`SweepError`
        when a cell fails terminally under ``"raise"``/``"retry"``, and
        :class:`PoolCrashError` when worker processes crash more than
        ``max_pool_rebuilds`` times.
        """
        if replications <= 0:
            raise ValueError(f"replications must be positive, got {replications}")
        backend = resolve_backend(self.executor, self.jobs)
        cells = self._build_cells(points, replications, seed, seed_fn)
        self.last_failures = []
        self.last_stats = SweepStats(total=len(cells), backend=backend.name)
        self._worker_metrics = {}
        self._held_leases = {}
        if not cells:
            return []
        tel = get_telemetry()
        start = time.perf_counter()
        tel.event(
            "sweep.start",
            cells=len(cells),
            points=len(points),
            replications=replications,
            jobs=self.jobs,
            on_error=self.on_error,
            executor=backend.name,
        )
        LOGGER.debug(
            "sweep start: %d points x %d replications, jobs=%d, on_error=%s, "
            "executor=%s",
            len(points), replications, self.jobs, self.on_error, backend.name,
        )
        results: List[Any] = [None] * len(cells)
        keys: Dict[int, str] = {}
        to_run = self._resume_from_checkpoint(worker, cells, context, results, keys)
        done = len(cells) - len(to_run)
        if self.last_stats.resumed:
            LOGGER.info(
                "resumed %d/%d cells from checkpoint",
                self.last_stats.resumed, len(cells),
            )
        if to_run:
            if self.coordinate:
                self._run_coordinated(
                    backend, worker, to_run, context, results, len(cells), keys
                )
            else:
                backend.run_cells(
                    self, worker, to_run, context, results, done, len(cells), keys
                )
        elapsed = time.perf_counter() - start
        self._finish_telemetry(tel, elapsed)
        LOGGER.debug(
            "sweep done: %d cells (%d resumed, %d skipped, %d stolen) in %.3fs",
            len(cells), self.last_stats.resumed, self.last_stats.skipped,
            self.last_stats.stolen_cells, elapsed,
        )
        return results

    def progress_snapshot(self) -> Dict[str, Any]:
        """A JSON-safe view of the current run's progress.

        Safe to call from another thread while :meth:`run` executes (the
        live ``/progress`` endpoint does exactly that): every field is a
        scalar read, so the snapshot is only ever momentarily stale,
        never torn across a single counter.
        """
        stats = self.last_stats
        return {
            "total": stats.total,
            "done": stats.resumed + stats.completed + stats.skipped,
            "completed": stats.completed,
            "resumed": stats.resumed,
            "retries": stats.retries,
            "skipped": stats.skipped,
            "timeouts": stats.timeouts,
            "pool_rebuilds": stats.pool_rebuilds,
            "stolen_cells": stats.stolen_cells,
            "backend": stats.backend,
            "failures": len(self.last_failures),
        }

    def _finish_telemetry(self, tel, elapsed: float) -> None:
        """Merge worker snapshots and mirror the run's stats (end of run)."""
        if tel.metrics_on:
            # Index order, not completion order: merge_snapshot arithmetic
            # is commutative for counters/histograms but gauges are
            # last-writer-wins, so a fixed order keeps them deterministic.
            for index in sorted(self._worker_metrics):
                tel.registry.merge_snapshot(self._worker_metrics[index])
            stats = self.last_stats
            tel.inc("sweep.cells", stats.total)
            tel.inc("sweep.completed", stats.completed)
            tel.inc("sweep.resumed", stats.resumed)
            tel.inc("sweep.retries", stats.retries)
            tel.inc("sweep.skipped", stats.skipped)
            tel.inc("sweep.timeouts", stats.timeouts)
            tel.inc("sweep.pool_rebuilds", stats.pool_rebuilds)
            tel.inc("sweep.stolen_cells", stats.stolen_cells)
        tel.event(
            "sweep.end",
            cells=self.last_stats.total,
            completed=self.last_stats.completed,
            resumed=self.last_stats.resumed,
            retries=self.last_stats.retries,
            skipped=self.last_stats.skipped,
            timeouts=self.last_stats.timeouts,
            pool_rebuilds=self.last_stats.pool_rebuilds,
            stolen=self.last_stats.stolen_cells,
            duration_s=round(elapsed, 6),
        )

    @staticmethod
    def _emit_cell_end(cell: GridCell, status: str, elapsed: float) -> None:
        get_telemetry().event(
            "cell.end",
            index=cell.index,
            status=status,
            duration_s=round(elapsed, 6),
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _build_cells(
        points: Sequence[Any],
        replications: int,
        seed: Optional[int],
        seed_fn: Optional[Callable[[Any, int], Optional[int]]],
    ) -> List[GridCell]:
        total = len(points) * replications
        if seed_fn is None:
            seeds = derive_seeds(seed, total)
        else:
            seeds = [
                seed_fn(point, replication)
                for point in points
                for replication in range(replications)
            ]
        return [
            GridCell(
                index=i * replications + r,
                point=point,
                replication=r,
                seed=seeds[i * replications + r],
            )
            for i, point in enumerate(points)
            for r in range(replications)
        ]

    def _resume_from_checkpoint(
        self,
        worker: SweepWorker,
        cells: List[GridCell],
        context: Any,
        results: List[Any],
        keys: Dict[int, str],
    ) -> List[GridCell]:
        """Load journaled cells; return the cells that still need running."""
        if self.checkpoint is None:
            return list(cells)
        self._worker_token = worker_token(worker)
        tel = get_telemetry()
        to_run: List[GridCell] = []
        resumed: List[GridCell] = []
        for cell in cells:
            key = self.checkpoint.cell_key(worker, cell, context)
            keys[cell.index] = key
            hit, value = self.checkpoint.load(key)
            if hit:
                results[cell.index] = value
                resumed.append(cell)
                if tel.tracing_on:
                    tel.event("checkpoint.hit", index=cell.index)
                    self._emit_cell_end(cell, "resumed", 0.0)
            else:
                to_run.append(cell)
        self.last_stats.resumed = len(resumed)
        for done, cell in enumerate(resumed, start=1):
            self._notify(cell, results[cell.index], done, len(cells))
        return to_run

    # -- multi-dispatcher coordination ---------------------------------

    def _settled(self) -> int:
        """Cells settled so far (resumed + completed + skipped)."""
        stats = self.last_stats
        return stats.resumed + stats.completed + stats.skipped

    def _run_coordinated(
        self,
        backend: ExecutionBackend,
        worker: SweepWorker,
        cells: List[GridCell],
        context: Any,
        results: List[Any],
        total: int,
        keys: Dict[int, str],
    ) -> None:
        """Partition ``cells`` with peer dispatchers via checkpoint leases.

        Cells are claimed lazily, at most ``jobs`` per round, so several
        dispatchers starting together interleave through the grid instead
        of the first one leasing everything.  Each round: adopt any cell
        a peer has journaled (counted as resumed), claim up to ``jobs``
        unleased cells and run them on ``backend``, and poll the rest.  A
        cell whose lease was observed held by a peer and later becomes
        claimable was *abandoned* — the peer released it without a
        journal entry (failure/skip) or died and let it expire — and
        executing it here counts toward ``stolen_cells``.  Leases this
        dispatcher holds are released as each cell settles — see
        :meth:`_record_success` and :meth:`_skip` — and wholesale on
        exit, so a raising sweep never wedges its peers for a full
        ``lease_ttl``.
        """
        store = self.checkpoint
        assert store is not None  # guaranteed by __init__
        owner = f"pid{os.getpid()}-{os.urandom(4).hex()}"
        self._lease_owner = owner
        tel = get_telemetry()
        seen_foreign: set = set()
        try:
            remaining = list(cells)
            while remaining:
                still: List[GridCell] = []
                batch: List[GridCell] = []
                for cell in remaining:
                    key = keys[cell.index]
                    if len(batch) >= self.jobs:
                        still.append(cell)  # leave unclaimed for peers
                        continue
                    hit, value = store.load(key)
                    if hit:
                        # A peer journaled this cell; adopt its result.
                        results[cell.index] = value
                        self.last_stats.resumed += 1
                        if tel.tracing_on:
                            tel.event("checkpoint.hit", index=cell.index)
                            self._emit_cell_end(cell, "adopted", 0.0)
                        self._notify(cell, value, self._settled(), total)
                        continue
                    # A lease record under another owner — live or already
                    # expired — marks the cell as a peer's: winning the
                    # claim below (now, or in a later round) is a steal.
                    held = store.lease_info(key)
                    if held is not None and held.get("owner") != owner:
                        seen_foreign.add(cell.index)
                    if store.claim(key, owner, ttl=self.lease_ttl):
                        self._held_leases[cell.index] = key
                        batch.append(cell)
                    else:
                        seen_foreign.add(cell.index)
                        still.append(cell)
                if batch:
                    stolen = [c for c in batch if c.index in seen_foreign]
                    if stolen:
                        self.last_stats.stolen_cells += len(stolen)
                        LOGGER.info(
                            "stole %d abandoned cell(s): %s",
                            len(stolen), [cell.index for cell in stolen],
                        )
                    backend.run_cells(
                        self, worker, batch, context, results,
                        self._settled(), total, keys,
                    )
                elif still and len(still) == len(remaining):
                    # Everything left is leased by live peers: poll.
                    time.sleep(_STEAL_POLL)
                remaining = still
        finally:
            self._lease_owner = None
            for key in self._held_leases.values():
                store.release(key)
            self._held_leases.clear()

    def _release_lease(self, cell: GridCell) -> None:
        key = self._held_leases.pop(cell.index, None)
        if key is not None and self.checkpoint is not None:
            self.checkpoint.release(key)

    # -- per-cell settlement policy (called by backends) ---------------

    def _backoff_delay(self, failed_attempts: int) -> float:
        if self.backoff_base <= 0.0:
            return 0.0
        delay = self.backoff_base * self.backoff_factor ** (failed_attempts - 1)
        return min(delay, self.backoff_max)

    def _notify(self, cell: GridCell, result: Any, done: int, total: int) -> None:
        if self.progress is None:
            return
        try:
            self.progress(cell, result, done, total)
        except Exception:
            LOGGER.warning(
                "progress hook raised for cell %d; continuing the sweep",
                cell.index, exc_info=True,
            )

    def _record_success(
        self,
        cell: GridCell,
        result: Any,
        results: List[Any],
        keys: Dict[int, str],
    ) -> None:
        results[cell.index] = result
        self.last_stats.completed += 1
        if self.checkpoint is not None:
            self.checkpoint.store(
                keys[cell.index], cell, result, token=self._worker_token
            )
        self._release_lease(cell)

    def _skip(self, cell: GridCell, state: _CellState, results: List[Any]) -> None:
        report = FailureReport(
            cell=cell,
            attempts=state.charged(),
            errors=tuple(state.errors),
            wall_time=state.elapsed,
        )
        self.last_failures.append(report)
        self.last_stats.skipped += 1
        results[cell.index] = None
        self._emit_cell_end(cell, "skipped", state.elapsed)
        self._release_lease(cell)
        LOGGER.warning(
            "skipping cell %d (point=%r, replication=%d) after %d attempt(s): %s",
            cell.index, cell.point, cell.replication, report.attempts,
            state.errors[-1] if state.errors else "unknown failure",
        )

    def _handle_failure(
        self,
        cell: GridCell,
        exc: BaseException,
        state: _CellState,
        results: List[Any],
        requeue: Callable[[GridCell, float], None],
    ) -> bool:
        """Bookkeep one failed execution.  True when the cell is settled
        (skipped); False when a retry was scheduled via ``requeue(cell,
        delay)``.  Raises :class:`SweepError` per policy."""
        state.attempts += 1
        state.errors.append(repr(exc))
        if self.on_error == "raise":
            raise SweepError(cell, exc, attempts=state.charged()) from exc
        if state.attempts <= self.max_retries:
            delay = self._backoff_delay(state.attempts)
            self.last_stats.retries += 1
            get_telemetry().event(
                "cell.retry",
                index=cell.index,
                attempt=state.attempts,
                delay_s=round(delay, 6),
                error=repr(exc),
            )
            LOGGER.warning(
                "cell %d failed (attempt %d/%d): %r; retrying in %.2fs",
                cell.index, state.attempts, self.max_retries + 1, exc, delay,
            )
            requeue(cell, delay)
            return False
        if self.on_error == "retry":
            raise SweepError(cell, exc, attempts=state.charged()) from exc
        self._skip(cell, state, results)
        return True


def run_sweep(
    worker: SweepWorker,
    points: Sequence[Any],
    *,
    jobs: Optional[int] = None,
    replications: int = 1,
    seed: Optional[int] = None,
    seed_fn: Optional[Callable[[Any, int], Optional[int]]] = None,
    context: Any = None,
    progress: Optional[ProgressHook] = None,
    on_error: str = "raise",
    max_retries: int = 2,
    backoff_base: float = 0.1,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[CheckpointStore] = None,
    executor: Union[None, str, ExecutionBackend] = None,
) -> List[Any]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        jobs=jobs,
        progress=progress,
        on_error=on_error,
        max_retries=max_retries,
        backoff_base=backoff_base,
        cell_timeout=cell_timeout,
        checkpoint=checkpoint,
        executor=executor,
    ).run(
        worker,
        points,
        replications=replications,
        seed=seed,
        seed_fn=seed_fn,
        context=context,
    )
