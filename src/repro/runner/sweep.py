"""Fault-tolerant parallel sweep execution over a (point × replication) grid.

Every sweep experiment in this repository has the same shape — a grid of
parameter points, optionally replicated over independent seeds, with one
pure worker call per cell.  :class:`SweepRunner` owns that shape once:

* **grid construction** — cells are enumerated in deterministic order
  (points outer, replications inner) and each carries its flat index;
* **seed derivation** — per-cell seeds come from
  ``numpy.random.SeedSequence(seed).spawn(...)`` by default, so they
  depend only on the cell's grid position, never on scheduling; an
  experiment that must preserve a historical derivation (e.g. the legacy
  ``seed + replication``) passes ``seed_fn`` instead;
* **execution** — ``jobs <= 1`` runs inline (no pickling requirement,
  zero overhead); ``jobs > 1`` submits cells to a
  :class:`concurrent.futures.ProcessPoolExecutor`;
* **ordered collection** — results are returned in grid order regardless
  of completion order, which is what makes ``jobs=1`` and ``jobs=4``
  bit-identical for pure workers;
* **hooks** — an optional ``progress`` callback fires per settled cell
  (in completion order) and a ``repro.runner`` logger records timing.  A
  hook that raises is logged at WARNING and never aborts the sweep.

The paper this repository reproduces is about correctness *under loss*;
the runner applies the same stance to its own execution:

* **retries with exponential backoff** — a failed cell is re-executed up
  to ``max_retries`` times, delayed ``backoff_base · backoff_factor^k``
  seconds (capped at ``backoff_max``).  Because a pure worker's result is
  a function of its cell alone, a retried cell's result is bit-identical
  to a first-try result.
* **an ``on_error`` policy** — ``"raise"`` (default, the historical
  fail-fast behavior), ``"retry"`` (retry, then raise), or ``"skip"``
  (retry, then record a :class:`FailureReport` and yield ``None`` for
  that cell instead of poisoning the whole grid).
* **per-cell timeouts** (pool path only) — a cell running longer than
  ``cell_timeout`` seconds is treated as failed: the pool is rebuilt
  (killing the hung worker), innocent in-flight cells are requeued
  uncharged, and the overdue cell is retried/skipped/raised per policy.
* **BrokenProcessPool recovery** — an OOM-killed or crashed worker
  process no longer discards completed results: the pool is rebuilt (at
  most ``max_pool_rebuilds`` times per run) and in-flight cells are
  requeued, each at most ``crash_retries`` times, since the crashed cell
  cannot be told apart from its in-flight neighbors.
* **checkpoint/resume** — with a :class:`repro.runner.CheckpointStore`,
  every completed cell is journaled atomically as it lands; a re-run of
  the same grid loads journaled cells instead of recomputing them, so an
  interrupted sweep resumes where it died with bit-identical output.

Workers submitted with ``jobs > 1`` must be module-level callables (or
picklable callable objects) and their arguments picklable — the standard
multiprocessing constraint.
"""

from __future__ import annotations

import heapq
import logging
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_telemetry
from repro.obs.profile import phase
from repro.obs.worker import MeteredResult, MeteredWorker
from repro.runner.checkpoint import CheckpointStore

LOGGER = logging.getLogger("repro.runner")

#: Signature of a sweep worker: ``worker(cell, context) -> result``.
SweepWorker = Callable[["GridCell", Any], Any]

#: Signature of the per-completion progress hook:
#: ``progress(cell, result, done, total)``.
ProgressHook = Callable[["GridCell", Any, int, int], None]

#: Valid ``on_error`` policies.
ON_ERROR_POLICIES = ("raise", "retry", "skip")

#: Longest sleep while the loop is only waiting on retry backoff.
_IDLE_TICK = 0.25


@dataclass(frozen=True)
class GridCell:
    """One unit of sweep work: a parameter point × replication slot.

    Attributes:
        index: flat position in grid order — results are collected here.
        point: the parameter point (any picklable value).
        replication: replication number in ``range(replications)``.
        seed: derived integer seed for this cell (``None`` when the sweep
            is unseeded).
    """

    index: int
    point: Any
    replication: int
    seed: Optional[int]


@dataclass(frozen=True)
class FailureReport:
    """Structured record of a cell given up on under ``on_error="skip"``.

    Attributes:
        cell: the failing cell.
        attempts: executions charged to the cell (worker raises, timeouts,
            and pool crashes while it was in flight).
        errors: ``repr`` of each failure, in order.
        wall_time: parent-observed seconds spent on the cell across all
            attempts (includes pool queueing, excludes backoff waits).
    """

    cell: GridCell
    attempts: int
    errors: Tuple[str, ...]
    wall_time: float


@dataclass
class SweepStats:
    """Execution counters for the most recent :meth:`SweepRunner.run`."""

    total: int = 0
    completed: int = 0
    resumed: int = 0
    retries: int = 0
    skipped: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0


class SweepError(RuntimeError):
    """A worker failed terminally; carries the failing cell for diagnosis."""

    def __init__(self, cell: GridCell, cause: BaseException, attempts: int = 1):
        super().__init__(
            f"sweep worker failed at point={cell.point!r} "
            f"replication={cell.replication} (cell {cell.index}) "
            f"after {attempts} attempt(s): {cause!r}"
        )
        self.cell = cell
        self.cause = cause
        self.attempts = attempts


class CellTimeout(RuntimeError):
    """A cell exceeded ``cell_timeout``; raised parent-side, never in the worker."""


class PoolCrashError(RuntimeError):
    """The process pool crashed more than ``max_pool_rebuilds`` times."""


class _CellState:
    """Per-cell failure bookkeeping (attempts, crashes, errors, wall time)."""

    __slots__ = ("cell", "attempts", "crashes", "errors", "elapsed", "submitted")

    def __init__(self, cell: GridCell):
        self.cell = cell
        self.attempts = 0  # worker raises + timeouts
        self.crashes = 0   # pool crashes while in flight (blame uncertain)
        self.errors: List[str] = []
        self.elapsed = 0.0
        self.submitted = 0.0

    def charged(self) -> int:
        return self.attempts + self.crashes


def default_jobs() -> int:
    """A reasonable ``jobs`` for "use the machine": CPU count, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def derive_seeds(
    seed: Optional[int], count: int
) -> List[Optional[int]]:
    """``count`` independent integer seeds from ``seed`` via ``SeedSequence``.

    Position-determined: cell ``i`` always receives the same seed for a
    given base seed, whatever the execution order or worker count.
    ``None`` propagates (unseeded sweeps stay unseeded).
    """
    if seed is None:
        return [None] * count
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(2, np.uint64)[0]) for child in children]


class SweepRunner:
    """Run a sweep worker over a parameter grid, serially or in processes.

    Args:
        jobs: worker processes; ``None`` or ``<= 1`` runs inline in this
            process.  (Use :func:`default_jobs` for "all the machine".)
        progress: optional per-settled-cell hook
            ``progress(cell, result, done, total)``; exceptions it raises
            are logged and swallowed.
        on_error: ``"raise"`` fails fast on the first worker error (the
            historical behavior); ``"retry"`` retries each failing cell up
            to ``max_retries`` times and raises if it still fails;
            ``"skip"`` retries likewise but then records a
            :class:`FailureReport` and leaves ``None`` in that cell's slot.
        max_retries: extra executions granted per cell after its first
            failure (total attempts = ``max_retries + 1``).
        backoff_base: delay before the first retry, in seconds; retry
            ``k`` waits ``backoff_base * backoff_factor**(k-1)``.
        backoff_factor: exponential backoff multiplier.
        backoff_max: upper bound on any single backoff delay.
        cell_timeout: wall-clock budget per cell execution, in seconds.
            Enforced only in the pool path (``jobs > 1``) — a hung worker
            is killed by rebuilding the pool and the cell is handled per
            ``on_error``; with ``jobs <= 1`` the setting is ignored with a
            warning (nothing can preempt the inline call).
        checkpoint: optional :class:`repro.runner.CheckpointStore`; every
            completed cell is journaled and journaled cells are loaded
            instead of executed on re-runs.
        max_pool_rebuilds: how many worker-process crashes to survive per
            run before raising :class:`PoolCrashError`.
        crash_retries: requeues granted to a cell that was in flight
            during a pool crash (defaults to ``max_retries``); beyond it
            the cell is handled per ``on_error``.

    After :meth:`run`, :attr:`last_failures` holds the run's
    :class:`FailureReport` list and :attr:`last_stats` its
    :class:`SweepStats`.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        progress: Optional[ProgressHook] = None,
        *,
        on_error: str = "raise",
        max_retries: int = 2,
        backoff_base: float = 0.1,
        backoff_factor: float = 2.0,
        backoff_max: float = 30.0,
        cell_timeout: Optional[float] = None,
        checkpoint: Optional[CheckpointStore] = None,
        max_pool_rebuilds: int = 5,
        crash_retries: Optional[int] = None,
    ):
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, got {on_error!r}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError(f"cell_timeout must be positive, got {cell_timeout}")
        if max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}"
            )
        self.jobs = 1 if jobs is None else max(1, int(jobs))
        self.progress = progress
        self.on_error = on_error
        self.max_retries = max_retries
        self.backoff_base = max(0.0, backoff_base)
        self.backoff_factor = max(1.0, backoff_factor)
        self.backoff_max = max(0.0, backoff_max)
        self.cell_timeout = cell_timeout
        self.checkpoint = checkpoint
        self.max_pool_rebuilds = max_pool_rebuilds
        self.crash_retries = max_retries if crash_retries is None else crash_retries
        self.last_failures: List[FailureReport] = []
        self.last_stats = SweepStats()
        # Worker-process metric snapshots, keyed by cell index; merged into
        # the parent registry in index order at the end of run() so the
        # aggregate is deterministic at any jobs count.
        self._worker_metrics: Dict[int, Dict[str, Any]] = {}

    def run(
        self,
        worker: SweepWorker,
        points: Sequence[Any],
        *,
        replications: int = 1,
        seed: Optional[int] = None,
        seed_fn: Optional[Callable[[Any, int], Optional[int]]] = None,
        context: Any = None,
    ) -> List[Any]:
        """Execute ``worker`` over every (point × replication) cell.

        ``seed_fn(point, replication)`` overrides the default
        ``SeedSequence.spawn`` derivation — it runs in the parent, so
        closures are fine even with ``jobs > 1``.  ``context`` is passed
        verbatim to every worker call (shared configuration).

        Returns results in grid order (points outer, replications inner);
        cells skipped under ``on_error="skip"`` hold ``None`` and are
        described in :attr:`last_failures`.  Raises :class:`SweepError`
        when a cell fails terminally under ``"raise"``/``"retry"``, and
        :class:`PoolCrashError` when worker processes crash more than
        ``max_pool_rebuilds`` times.
        """
        if replications <= 0:
            raise ValueError(f"replications must be positive, got {replications}")
        cells = self._build_cells(points, replications, seed, seed_fn)
        self.last_failures = []
        self.last_stats = SweepStats(total=len(cells))
        self._worker_metrics = {}
        if not cells:
            return []
        tel = get_telemetry()
        start = time.perf_counter()
        tel.event(
            "sweep.start",
            cells=len(cells),
            points=len(points),
            replications=replications,
            jobs=self.jobs,
            on_error=self.on_error,
        )
        LOGGER.debug(
            "sweep start: %d points x %d replications, jobs=%d, on_error=%s",
            len(points), replications, self.jobs, self.on_error,
        )
        results: List[Any] = [None] * len(cells)
        keys: Dict[int, str] = {}
        to_run = self._resume_from_checkpoint(worker, cells, context, results, keys)
        done = len(cells) - len(to_run)
        if self.last_stats.resumed:
            LOGGER.info(
                "resumed %d/%d cells from checkpoint",
                self.last_stats.resumed, len(cells),
            )
        if to_run:
            if self.jobs <= 1:
                self._run_inline(worker, to_run, context, results, done, len(cells), keys)
            else:
                self._run_pool(worker, to_run, context, results, done, len(cells), keys)
        elapsed = time.perf_counter() - start
        self._finish_telemetry(tel, elapsed)
        LOGGER.debug(
            "sweep done: %d cells (%d resumed, %d skipped) in %.3fs",
            len(cells), self.last_stats.resumed, self.last_stats.skipped,
            elapsed,
        )
        return results

    def _finish_telemetry(self, tel, elapsed: float) -> None:
        """Merge worker snapshots and mirror the run's stats (end of run)."""
        if tel.metrics_on:
            # Index order, not completion order: merge_snapshot arithmetic
            # is commutative for counters/histograms but gauges are
            # last-writer-wins, so a fixed order keeps them deterministic.
            for index in sorted(self._worker_metrics):
                tel.registry.merge_snapshot(self._worker_metrics[index])
            stats = self.last_stats
            tel.inc("sweep.cells", stats.total)
            tel.inc("sweep.completed", stats.completed)
            tel.inc("sweep.resumed", stats.resumed)
            tel.inc("sweep.retries", stats.retries)
            tel.inc("sweep.skipped", stats.skipped)
            tel.inc("sweep.timeouts", stats.timeouts)
            tel.inc("sweep.pool_rebuilds", stats.pool_rebuilds)
        tel.event(
            "sweep.end",
            cells=self.last_stats.total,
            completed=self.last_stats.completed,
            resumed=self.last_stats.resumed,
            retries=self.last_stats.retries,
            skipped=self.last_stats.skipped,
            timeouts=self.last_stats.timeouts,
            pool_rebuilds=self.last_stats.pool_rebuilds,
            duration_s=round(elapsed, 6),
        )

    @staticmethod
    def _emit_cell_end(cell: GridCell, status: str, elapsed: float) -> None:
        get_telemetry().event(
            "cell.end",
            index=cell.index,
            status=status,
            duration_s=round(elapsed, 6),
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _build_cells(
        points: Sequence[Any],
        replications: int,
        seed: Optional[int],
        seed_fn: Optional[Callable[[Any, int], Optional[int]]],
    ) -> List[GridCell]:
        total = len(points) * replications
        if seed_fn is None:
            seeds = derive_seeds(seed, total)
        else:
            seeds = [
                seed_fn(point, replication)
                for point in points
                for replication in range(replications)
            ]
        return [
            GridCell(
                index=i * replications + r,
                point=point,
                replication=r,
                seed=seeds[i * replications + r],
            )
            for i, point in enumerate(points)
            for r in range(replications)
        ]

    def _resume_from_checkpoint(
        self,
        worker: SweepWorker,
        cells: List[GridCell],
        context: Any,
        results: List[Any],
        keys: Dict[int, str],
    ) -> List[GridCell]:
        """Load journaled cells; return the cells that still need running."""
        if self.checkpoint is None:
            return list(cells)
        tel = get_telemetry()
        to_run: List[GridCell] = []
        resumed: List[GridCell] = []
        for cell in cells:
            key = self.checkpoint.cell_key(worker, cell, context)
            keys[cell.index] = key
            hit, value = self.checkpoint.load(key)
            if hit:
                results[cell.index] = value
                resumed.append(cell)
                if tel.tracing_on:
                    tel.event("checkpoint.hit", index=cell.index)
                    self._emit_cell_end(cell, "resumed", 0.0)
            else:
                to_run.append(cell)
        self.last_stats.resumed = len(resumed)
        for done, cell in enumerate(resumed, start=1):
            self._notify(cell, results[cell.index], done, len(cells))
        return to_run

    def _backoff_delay(self, failed_attempts: int) -> float:
        if self.backoff_base <= 0.0:
            return 0.0
        delay = self.backoff_base * self.backoff_factor ** (failed_attempts - 1)
        return min(delay, self.backoff_max)

    def _notify(self, cell: GridCell, result: Any, done: int, total: int) -> None:
        if self.progress is None:
            return
        try:
            self.progress(cell, result, done, total)
        except Exception:
            LOGGER.warning(
                "progress hook raised for cell %d; continuing the sweep",
                cell.index, exc_info=True,
            )

    def _record_success(
        self,
        cell: GridCell,
        result: Any,
        results: List[Any],
        keys: Dict[int, str],
    ) -> None:
        results[cell.index] = result
        self.last_stats.completed += 1
        if self.checkpoint is not None:
            self.checkpoint.store(keys[cell.index], cell, result)

    def _skip(self, cell: GridCell, state: _CellState, results: List[Any]) -> None:
        report = FailureReport(
            cell=cell,
            attempts=state.charged(),
            errors=tuple(state.errors),
            wall_time=state.elapsed,
        )
        self.last_failures.append(report)
        self.last_stats.skipped += 1
        results[cell.index] = None
        self._emit_cell_end(cell, "skipped", state.elapsed)
        LOGGER.warning(
            "skipping cell %d (point=%r, replication=%d) after %d attempt(s): %s",
            cell.index, cell.point, cell.replication, report.attempts,
            state.errors[-1] if state.errors else "unknown failure",
        )

    def _handle_failure(
        self,
        cell: GridCell,
        exc: BaseException,
        state: _CellState,
        results: List[Any],
        requeue: Callable[[GridCell, float], None],
    ) -> bool:
        """Bookkeep one failed execution.  True when the cell is settled
        (skipped); False when a retry was scheduled via ``requeue(cell,
        delay)``.  Raises :class:`SweepError` per policy."""
        state.attempts += 1
        state.errors.append(repr(exc))
        if self.on_error == "raise":
            raise SweepError(cell, exc, attempts=state.charged()) from exc
        if state.attempts <= self.max_retries:
            delay = self._backoff_delay(state.attempts)
            self.last_stats.retries += 1
            get_telemetry().event(
                "cell.retry",
                index=cell.index,
                attempt=state.attempts,
                delay_s=round(delay, 6),
                error=repr(exc),
            )
            LOGGER.warning(
                "cell %d failed (attempt %d/%d): %r; retrying in %.2fs",
                cell.index, state.attempts, self.max_retries + 1, exc, delay,
            )
            requeue(cell, delay)
            return False
        if self.on_error == "retry":
            raise SweepError(cell, exc, attempts=state.charged()) from exc
        self._skip(cell, state, results)
        return True

    # -- inline path ---------------------------------------------------

    def _run_inline(
        self,
        worker: SweepWorker,
        cells: List[GridCell],
        context: Any,
        results: List[Any],
        done: int,
        total: int,
        keys: Dict[int, str],
    ) -> None:
        if self.cell_timeout is not None:
            LOGGER.warning(
                "cell_timeout is only enforced with jobs > 1; "
                "running inline without deadlines"
            )
        for cell in cells:
            state = _CellState(cell)
            retry_delay = [0.0]

            def _requeue(_cell: GridCell, delay: float) -> None:
                retry_delay[0] = delay

            while True:
                if retry_delay[0] > 0.0:
                    time.sleep(retry_delay[0])
                    retry_delay[0] = 0.0
                started = time.monotonic()
                try:
                    with phase("cell_run"):
                        result = worker(cell, context)
                except Exception as exc:
                    state.elapsed += time.monotonic() - started
                    if self._handle_failure(cell, exc, state, results, _requeue):
                        break  # skipped
                else:
                    state.elapsed += time.monotonic() - started
                    self._record_success(cell, result, results, keys)
                    self._emit_cell_end(cell, "ok", state.elapsed)
                    break
            done += 1
            self._notify(cell, results[cell.index], done, total)

    # -- pool path -----------------------------------------------------

    def _run_pool(
        self,
        worker: SweepWorker,
        cells: List[GridCell],
        context: Any,
        results: List[Any],
        done: int,
        total: int,
        keys: Dict[int, str],
    ) -> None:
        max_workers = min(self.jobs, len(cells))
        # Capture worker-process metrics when the parent collects metrics.
        # The wrapper advertises the bare worker's checkpoint token, so
        # journal keys (already computed in keys) stay valid either way.
        submit_worker: SweepWorker = worker
        if get_telemetry().metrics_on:
            submit_worker = MeteredWorker(worker)
        pending: deque = deque(cells)
        waiting: List[Tuple[float, int, GridCell]] = []  # (ready_at, idx, cell)
        states = {cell.index: _CellState(cell) for cell in cells}
        inflight: Dict[Future, GridCell] = {}
        rebuilds = 0

        def _requeue(cell: GridCell, delay: float) -> None:
            heapq.heappush(waiting, (time.monotonic() + delay, cell.index, cell))

        pool = ProcessPoolExecutor(max_workers=max_workers)
        try:
            while pending or waiting or inflight:
                now = time.monotonic()
                while waiting and waiting[0][0] <= now:
                    _, _, ready_cell = heapq.heappop(waiting)
                    pending.append(ready_cell)
                # Cap outstanding submissions at the worker count: in-flight
                # cells are then (almost) the running set, which keeps the
                # blame set small when the pool crashes.
                while pending and len(inflight) < max_workers:
                    cell = pending.popleft()
                    future = pool.submit(submit_worker, cell, context)
                    inflight[future] = cell
                    states[cell.index].submitted = time.monotonic()
                if not inflight:
                    # Everything is waiting out a retry backoff.
                    pause = max(0.0, waiting[0][0] - time.monotonic())
                    time.sleep(min(pause, _IDLE_TICK))
                    continue

                finished, _ = wait(
                    set(inflight),
                    timeout=self._wait_timeout(waiting, inflight, states),
                    return_when=FIRST_COMPLETED,
                )
                crash: Optional[BaseException] = None
                for future in finished:
                    cell = inflight[future]
                    try:
                        result = future.result()
                    except BrokenExecutor as exc:
                        # Pool is dead: every in-flight future fails with
                        # this; handle them wholesale below.
                        crash = exc
                        break
                    except Exception as exc:
                        del inflight[future]
                        state = states[cell.index]
                        state.elapsed += time.monotonic() - state.submitted
                        if self._handle_failure(cell, exc, state, results, _requeue):
                            done += 1
                            self._notify(cell, None, done, total)
                    else:
                        del inflight[future]
                        if isinstance(result, MeteredResult):
                            self._worker_metrics[cell.index] = result.metrics
                            result = result.value
                        state = states[cell.index]
                        state.elapsed += time.monotonic() - state.submitted
                        self._record_success(cell, result, results, keys)
                        self._emit_cell_end(cell, "ok", state.elapsed)
                        done += 1
                        self._notify(cell, result, done, total)

                if crash is not None:
                    rebuilds += 1
                    self.last_stats.pool_rebuilds += 1
                    get_telemetry().event("pool.rebuild", reason="crash")
                    LOGGER.warning(
                        "worker process died (%r); rebuilding pool (%d/%d), "
                        "requeueing %d in-flight cell(s); %d completed result(s) kept",
                        crash, rebuilds, self.max_pool_rebuilds, len(inflight),
                        self.last_stats.completed,
                    )
                    if rebuilds > self.max_pool_rebuilds:
                        raise PoolCrashError(
                            f"process pool crashed {rebuilds} times "
                            f"(max_pool_rebuilds={self.max_pool_rebuilds}); "
                            f"last crash: {crash!r}"
                        ) from crash
                    pool = self._rebuild_pool(pool, max_workers)
                    done = self._settle_crashed(
                        crash, inflight, states, pending, results, done, total
                    )
                    continue

                if self.cell_timeout is not None and inflight:
                    done, pool = self._enforce_deadlines(
                        pool, max_workers, inflight, states, pending,
                        results, done, total, _requeue,
                    )
        finally:
            self._shutdown_pool(pool)

    def _settle_crashed(
        self,
        crash: BaseException,
        inflight: Dict[Future, GridCell],
        states: Dict[int, _CellState],
        pending: deque,
        results: List[Any],
        done: int,
        total: int,
    ) -> int:
        """Requeue or settle every cell that was in flight during a crash.

        The crashed cell cannot be told apart from its in-flight
        neighbors, so each gets a crash charge; a cell over its
        ``crash_retries`` budget is settled per ``on_error``.
        """
        now = time.monotonic()
        for cell in inflight.values():
            state = states[cell.index]
            state.crashes += 1
            state.elapsed += now - state.submitted
            state.errors.append(repr(crash))
            if state.crashes <= self.crash_retries:
                pending.append(cell)
            elif self.on_error == "skip":
                self._skip(cell, state, results)
                done += 1
                self._notify(cell, None, done, total)
            else:
                raise SweepError(cell, crash, attempts=state.charged()) from crash
        inflight.clear()
        return done

    def _enforce_deadlines(
        self,
        pool: ProcessPoolExecutor,
        max_workers: int,
        inflight: Dict[Future, GridCell],
        states: Dict[int, _CellState],
        pending: deque,
        results: List[Any],
        done: int,
        total: int,
        requeue: Callable[[GridCell, float], None],
    ) -> Tuple[int, ProcessPoolExecutor]:
        """Kill the pool if any in-flight cell is over its deadline.

        ``ProcessPoolExecutor`` cannot cancel a running task, so deadline
        enforcement means rebuilding the pool: the overdue cells are
        charged a timeout attempt and retried/skipped/raised per policy,
        while the other in-flight cells are requeued uncharged.
        """
        now = time.monotonic()
        overdue = {
            cell.index
            for future, cell in inflight.items()
            if not future.done()
            and now - states[cell.index].submitted >= self.cell_timeout
        }
        if not overdue:
            return done, pool
        self.last_stats.timeouts += len(overdue)
        tel = get_telemetry()
        if tel.tracing_on:
            tel.event("pool.rebuild", reason="timeout")
            for index in sorted(overdue):
                tel.event(
                    "cell.timeout",
                    index=index,
                    elapsed_s=round(now - states[index].submitted, 6),
                )
        LOGGER.warning(
            "%d cell(s) exceeded cell_timeout=%.3gs; killing the pool "
            "and requeueing %d innocent in-flight cell(s)",
            len(overdue), self.cell_timeout, len(inflight) - len(overdue),
        )
        pool = self._rebuild_pool(pool, max_workers)
        for future, cell in list(inflight.items()):
            state = states[cell.index]
            state.elapsed += now - state.submitted
            if cell.index in overdue:
                exc = CellTimeout(
                    f"cell {cell.index} (point={cell.point!r}) exceeded "
                    f"cell_timeout={self.cell_timeout}s"
                )
                if self._handle_failure(cell, exc, state, results, requeue):
                    done += 1
                    self._notify(cell, None, done, total)
            else:
                pending.append(cell)
        inflight.clear()
        return done, pool

    def _wait_timeout(
        self,
        waiting: List[Tuple[float, int, GridCell]],
        inflight: Dict[Future, GridCell],
        states: Dict[int, _CellState],
    ) -> Optional[float]:
        """How long ``wait`` may block before a deadline or retry is due."""
        now = time.monotonic()
        candidates = []
        if self.cell_timeout is not None and inflight:
            soonest = min(
                states[cell.index].submitted for cell in inflight.values()
            )
            candidates.append(max(0.0, soonest + self.cell_timeout - now))
        if waiting:
            candidates.append(max(0.0, waiting[0][0] - now))
        if not candidates:
            return None
        return min(candidates) + 0.01

    def _rebuild_pool(
        self, pool: ProcessPoolExecutor, max_workers: int
    ) -> ProcessPoolExecutor:
        self._shutdown_pool(pool)
        return ProcessPoolExecutor(max_workers=max_workers)

    @staticmethod
    def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
        """Shut a pool down without waiting on (possibly hung) workers."""
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - Python < 3.9
            pool.shutdown(wait=False)
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                if process.is_alive():
                    process.terminate()
            except Exception:  # pragma: no cover - already-reaped process
                pass


def run_sweep(
    worker: SweepWorker,
    points: Sequence[Any],
    *,
    jobs: Optional[int] = None,
    replications: int = 1,
    seed: Optional[int] = None,
    seed_fn: Optional[Callable[[Any, int], Optional[int]]] = None,
    context: Any = None,
    progress: Optional[ProgressHook] = None,
    on_error: str = "raise",
    max_retries: int = 2,
    backoff_base: float = 0.1,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[CheckpointStore] = None,
) -> List[Any]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        jobs=jobs,
        progress=progress,
        on_error=on_error,
        max_retries=max_retries,
        backoff_base=backoff_base,
        cell_timeout=cell_timeout,
        checkpoint=checkpoint,
    ).run(
        worker,
        points,
        replications=replications,
        seed=seed,
        seed_fn=seed_fn,
        context=context,
    )
