"""Command-line interface: run experiments and simulations from the shell.

Usage::

    python -m repro list
    python -m repro list --json
    python -m repro run fig-6.1
    python -m repro run table-6.4 --fast
    python -m repro run fig-6.3 --fast --artifacts-dir artifacts/
    python -m repro report --fast --output report/
    python -m repro simulate --nodes 500 --view-size 40 --d-low 18 \
        --loss 0.01 --rounds 300
    python -m repro size --target-degree 30 --delta 0.01 --loss 0.01

Every experiment is an :class:`repro.experiments.registry.ExperimentSpec`
(see docs/architecture.md); the CLI is a thin veneer over the registry.
``run`` executes one experiment through :class:`repro.runner.SweepRunner`
and prints the same rows/series the paper reports; ``--fast`` selects
the CI-sized grid.  ``simulate`` runs a custom S&F deployment and
summarizes its steady state; ``size`` applies the §6.3 and §7.4 sizing
rules.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path

from repro.core.params import SFParams

# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import registry

    specs = registry.list_specs()
    if args.json:
        print(json.dumps([spec.describe() for spec in specs], indent=2))
        return 0
    print("Available experiments (see docs/paper_map.md for the paper mapping):")
    width = max(
        len(name)
        for spec in specs
        for name in (spec.name, *spec.aliases)
    )
    for spec in specs:
        print(f"  {spec.name:<{width}}  {spec.anchor} — {spec.description}")
        for alias in spec.aliases:
            print(f"  {alias:<{width}}  alias for {spec.name}")
    return 0


def _resolve_jobs(jobs: int) -> int:
    """``--jobs 0`` means "use the machine": one worker per CPU, capped."""
    if jobs > 0:
        return jobs
    from repro.runner import default_jobs

    return default_jobs()


def _make_runner(args: argparse.Namespace):
    """A :class:`SweepRunner` configured from the fault-tolerance flags."""
    from repro.runner import CheckpointStore, SweepRunner

    checkpoint = None
    if args.checkpoint_dir:
        checkpoint = CheckpointStore(args.checkpoint_dir)
    if getattr(args, "coordinate", False) and checkpoint is None:
        raise SystemExit("--coordinate requires --checkpoint-dir")
    kwargs = {}
    lease_ttl = getattr(args, "lease_ttl", None)
    if lease_ttl is not None:
        kwargs["lease_ttl"] = lease_ttl
    return SweepRunner(
        jobs=_resolve_jobs(args.jobs),
        on_error=args.on_error,
        cell_timeout=args.cell_timeout,
        checkpoint=checkpoint,
        executor=getattr(args, "executor", None),
        coordinate=getattr(args, "coordinate", False),
        **kwargs,
    )


def _configure_telemetry(args: argparse.Namespace):
    """Install process telemetry from ``--trace``/``--metrics-out``.

    Any of the telemetry flags (``--metrics-port`` included) turns the
    metrics registry on (the trace alone would not be able to feed the
    one-line summary, the ``<slug>.metrics.json`` artifact, or the
    ``/metrics`` exposition).  Returns the installed telemetry, or
    ``None`` when every flag is absent — the zero-cost default.
    """
    trace = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    metrics_port = getattr(args, "metrics_port", None)
    if not trace and not metrics_out and metrics_port is None:
        return None
    from repro import obs

    return obs.configure(metrics=True, trace_path=trace)


def _start_endpoint(args: argparse.Namespace, telemetry, progress=None):
    """Serve live ``/metrics`` + ``/progress`` when ``--metrics-port`` is set.

    Returns the started :class:`repro.obs.MetricsEndpoint` (or ``None``);
    the bound address goes to stderr so scripts scraping stdout for
    experiment output are unaffected.
    """
    port = getattr(args, "metrics_port", None)
    if port is None:
        return None
    from repro.obs import MetricsEndpoint

    endpoint = MetricsEndpoint(
        registry=telemetry.registry if telemetry else None,
        progress=progress,
        port=port,
    )
    bound = endpoint.start()
    print(
        f"metrics endpoint: http://127.0.0.1:{bound}/metrics "
        f"(progress at /progress)",
        file=sys.stderr,
    )
    return endpoint


def _stop_endpoint(endpoint) -> None:
    if endpoint is not None:
        endpoint.stop()


def _telemetry_summary(registry, runner=None) -> str:
    """The one-line summary ``run``/``simulate``/``report`` print."""
    snap = registry.snapshot()
    counters = snap["counters"]
    cell_run = snap["timers"].get("phase.cell_run", {})
    wall = cell_run.get("total") or 0.0
    cpu = cell_run.get("cpu_total") or 0.0
    line = (
        "telemetry:"
        f" cells={counters.get('sweep.cells', 0)}"
        f" completed={counters.get('sweep.completed', 0)}"
        f" resumed={counters.get('sweep.resumed', 0)}"
        f" retries={counters.get('sweep.retries', 0)}"
        f" skipped={counters.get('sweep.skipped', 0)}"
        f" actions={counters.get('engine.actions', 0)}"
        f" cell_run={wall:.2f}s"
        f" cpu={cpu:.2f}s"
    )
    if runner is not None and runner.last_stats.backend:
        line += (
            f" backend={runner.last_stats.backend}"
            f" stolen={runner.last_stats.stolen_cells}"
        )
    return line


def _finish_telemetry(args: argparse.Namespace, telemetry, runner=None) -> None:
    """Flush the trace, write ``--metrics-out``, print the summary."""
    if telemetry is None:
        return
    if telemetry.tracer is not None:
        telemetry.tracer.flush()
    if telemetry.registry is not None:
        metrics_out = getattr(args, "metrics_out", None)
        if metrics_out:
            path = Path(metrics_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(telemetry.registry.snapshot(), indent=2, sort_keys=True)
            )
        print(_telemetry_summary(telemetry.registry, runner=runner))


def _reset_telemetry(telemetry) -> None:
    if telemetry is None:
        return
    from repro import obs

    obs.reset()


def _print_failures(sweep_runner) -> None:
    """Summarize cells skipped under ``--on-error skip`` (to stderr)."""
    for failure in sweep_runner.last_failures:
        print(
            f"WARNING: skipped point={failure.cell.point!r} "
            f"replication={failure.cell.replication} after "
            f"{failure.attempts} attempt(s): {failure.errors[-1]}",
            file=sys.stderr,
        )


def _execute(spec, args: argparse.Namespace, sweep_runner=None):
    """Run ``spec`` with the CLI's runner flags; returns ``(result, runner)``.

    ``sweep_runner`` lets callers pre-build the runner (so a live
    ``/progress`` endpoint can be bound to it before execution starts).
    Backend warnings from the registry (a non-default ``--backend`` on an
    analytic experiment) are re-routed to stderr so they are visible even
    where Python's once-per-location warning filter would drop them.
    """
    if sweep_runner is None:
        sweep_runner = _make_runner(args)
    from repro.experiments import registry

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", RuntimeWarning)
        result = registry.execute(
            spec, fast=args.fast, backend=args.backend, runner=sweep_runner
        )
    for warning in caught:
        print(f"WARNING: {warning.message}", file=sys.stderr)
    _print_failures(sweep_runner)
    return result, sweep_runner


def _write_artifacts(
    spec, result, text: str, directory, runner=None, registry=None
) -> None:
    """Archive ``<slug>.txt``, the versioned ``<slug>.json`` envelope
    (with the sweep's stats/failures when ``runner`` is given), and —
    when a metrics ``registry`` is active — ``<slug>.metrics.json``."""
    output_dir = Path(directory)
    output_dir.mkdir(parents=True, exist_ok=True)
    slug = spec.name.replace(".", "_")
    (output_dir / f"{slug}.txt").write_text(text + "\n")
    (output_dir / f"{slug}.json").write_text(
        json.dumps(spec.to_json(result, runner=runner), indent=2, sort_keys=True)
    )
    if registry is not None:
        (output_dir / f"{slug}.metrics.json").write_text(
            json.dumps(registry.snapshot(), indent=2, sort_keys=True)
        )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import registry

    try:
        spec = registry.get(args.experiment)
    except registry.UnknownExperimentError:
        print(
            f"unknown experiment {args.experiment!r}; try 'python -m repro list'",
            file=sys.stderr,
        )
        return 2
    telemetry = _configure_telemetry(args)
    sweep_runner = _make_runner(args)
    endpoint = _start_endpoint(args, telemetry, sweep_runner.progress_snapshot)
    try:
        result, sweep_runner = _execute(spec, args, sweep_runner)
        text = result.format()
        print(text)
        if args.artifacts_dir:
            _write_artifacts(
                spec,
                result,
                text,
                args.artifacts_dir,
                runner=sweep_runner,
                registry=telemetry.registry if telemetry else None,
            )
        _finish_telemetry(args, telemetry, runner=sweep_runner)
    finally:
        _stop_endpoint(endpoint)
        _reset_telemetry(telemetry)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.common import build_sf_system
    from repro.metrics.degrees import degree_summary
    from repro.metrics.graph_stats import graph_statistics

    params = SFParams(view_size=args.view_size, d_low=args.d_low)
    boot = min(args.view_size - 2, max(args.d_low + 2, (3 * args.view_size // 4) & ~1))
    if boot >= args.nodes:
        print("need more nodes than the bootstrap outdegree", file=sys.stderr)
        return 2
    telemetry = _configure_telemetry(args)
    try:
        protocol, engine = build_sf_system(
            args.nodes,
            params,
            loss_rate=args.loss,
            seed=args.seed,
            backend=args.backend,
            shard_workers=getattr(args, "shard_workers", None),
        )
        engine.run_rounds(args.rounds)
        protocol.check_invariant()

        summary = degree_summary(protocol)
        stats = graph_statistics(
            protocol.export_graph(), compute_diameter=args.nodes <= 2000
        )
        print(f"n={args.nodes} s={args.view_size} dL={args.d_low} "
              f"loss={args.loss} rounds={args.rounds}")
        print(f"outdegree {summary.outdegree_mean:.1f} ± {summary.outdegree_std:.1f}, "
              f"indegree {summary.indegree_mean:.1f} ± {summary.indegree_std:.1f}")
        print(f"dup {protocol.stats.duplication_probability():.4f}, "
              f"del {protocol.stats.deletion_probability():.4f}, "
              f"dependent {protocol.dependent_fraction():.4f}")
        print(f"connected={stats.weakly_connected} "
              f"diameter={stats.undirected_diameter} "
              f"self-edges={stats.self_edges}")
        _finish_telemetry(args, telemetry)
        if hasattr(protocol, "close"):
            protocol.close()
    finally:
        _reset_telemetry(telemetry)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Run a set of experiments, archiving text and JSON per experiment."""
    from repro.experiments import registry

    names = args.experiments or registry.names()
    specs = []
    unknown = []
    for name in names:
        try:
            specs.append(registry.get(name))
        except registry.UnknownExperimentError:
            unknown.append(name)
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    telemetry = _configure_telemetry(args)
    # /progress follows whichever experiment's runner is currently active.
    current = {"runner": None}

    def _progress():
        runner = current["runner"]
        return runner.progress_snapshot() if runner is not None else {}

    endpoint = _start_endpoint(args, telemetry, _progress)
    sweep_runner = None
    try:
        for spec in specs:
            print(f"== {spec.name} ==")
            per_registry = None
            if telemetry is not None:
                # Fresh registry per experiment (so <slug>.metrics.json is
                # that experiment's alone), shared tracer across the run;
                # the master registry gets the per-experiment snapshots
                # merged back for --metrics-out and the summary line.
                from repro import obs

                per_registry = obs.Registry()
                obs.configure(registry=per_registry, tracer=telemetry.tracer)
            try:
                sweep_runner = _make_runner(args)
                current["runner"] = sweep_runner
                result, sweep_runner = _execute(spec, args, sweep_runner)
            finally:
                if telemetry is not None:
                    obs.set_telemetry(telemetry)
            if per_registry is not None:
                telemetry.registry.merge_snapshot(per_registry.snapshot())
            text = result.format()
            print(text)
            print()
            _write_artifacts(
                spec, result, text, args.output,
                runner=sweep_runner, registry=per_registry,
            )
        _finish_telemetry(args, telemetry, runner=sweep_runner)
    finally:
        _stop_endpoint(endpoint)
        _reset_telemetry(telemetry)
    print(f"report written to {args.output}/")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Boot a localhost UDP cluster and print (and check) its report.

    Exit status 1 means the run was not clean — a view broke the
    Observation 5.1 degree bounds or a node task raised — which is what
    the CI ``cluster-smoke`` job keys on.
    """
    from repro.runtime import ClusterConfig, run_cluster

    config = ClusterConfig(
        n=args.n,
        view_size=args.view_size,
        d_low=args.d_low,
        drop_rate=args.drop,
        rate=args.rate,
        duration_s=args.duration,
        seed=args.seed,
        kill_restart=args.kill_restart,
        kill_wave=args.kill_wave,
        partition_groups=args.partition_groups,
        failure_detection=args.failure_detection,
        suspect_after_s=args.suspect_after,
        fail_after_s=args.fail_after,
    )
    telemetry = _configure_telemetry(args)
    try:
        report = run_cluster(config)
        print(report.format())
        if args.json:
            from dataclasses import asdict

            path = Path(args.json)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(asdict(report), indent=2, sort_keys=True))
        _finish_telemetry(args, telemetry)
    finally:
        _reset_telemetry(telemetry)
    if not report.ok():
        for violation in report.degree_violations:
            print(f"DEGREE VIOLATION: {violation}", file=sys.stderr)
        for error in report.errors:
            print(f"NODE ERROR: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_checkpoint_gc(args: argparse.Namespace) -> int:
    """Prune unresumable checkpoint entries; report reclaimed bytes."""
    from repro.runner import gc_store

    report = gc_store(
        args.directory,
        workers=args.worker or None,
        dry_run=args.dry_run,
    )
    verb = "would reclaim" if args.dry_run else "reclaimed"
    print(
        f"checkpoint-gc {args.directory}: scanned={report.scanned} "
        f"pruned={report.pruned} kept={report.kept} "
        f"{verb} {report.reclaimed_bytes} bytes"
    )
    for reason in sorted(report.reasons):
        print(f"  {reason}: {report.reasons[reason]}")
    return 0


def _cmd_size(args: argparse.Namespace) -> int:
    from repro.analysis.connectivity import min_d_low_for_connectivity
    from repro.core.thresholds import select_thresholds

    selection = select_thresholds(args.target_degree, args.delta)
    print(f"§6.3 rule: d̂={args.target_degree}, δ={args.delta} → "
          f"dL={selection.d_low}, s={selection.view_size} "
          f"(tails {selection.low_tail:.4f}/{selection.high_tail:.4f})")
    required = min_d_low_for_connectivity(args.loss, args.delta, args.epsilon)
    print(f"§7.4 connectivity at l={args.loss}, ε={args.epsilon:.0e}: dL ≥ {required}")
    d_low = max(selection.d_low, required)
    view_size = max(selection.view_size, d_low + 6)
    print(f"recommended: dL={d_low}, s={view_size}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'Correctness of gossip-based "
        "membership under message loss' (Gurevich & Keidar, PODC 2009).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list available experiments")
    list_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the registry as JSON (name, anchor, aliases, schema)",
    )
    list_parser.set_defaults(func=_cmd_list)

    from repro.experiments.common import available_backends

    backend_kwargs = dict(
        choices=list(available_backends()),
        default="reference",
        help="simulation backend: 'reference' (legacy object-per-node), "
        "'array' (fused vectorized numpy kernel), 'jit' (Numba-compiled "
        "batch loop; listed only when the 'jit' extra is installed), "
        "'sharded' (shared-memory array state with per-shard apply "
        "workers, for very large n), or 'reference-kernel' "
        "(object-per-node under the batched kernel discipline); analytic "
        "experiments warn when a non-default backend cannot apply",
    )
    jobs_kwargs = dict(
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the experiment's cell grid (default 1 = "
        "serial; 0 = one per CPU, capped at 8, or the REPRO_JOBS env "
        "override when set); results are identical at any value",
    )
    on_error_kwargs = dict(
        choices=["raise", "retry", "skip"],
        default="raise",
        help="cell failure policy: 'raise' fails fast (default); 'retry' "
        "retries each failing cell with exponential backoff, then fails; "
        "'skip' retries likewise, then drops the cell and keeps the rest",
    )
    cell_timeout_kwargs = dict(
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget; an overdue cell counts as failed "
        "(pool path only, i.e. --jobs > 1)",
    )
    checkpoint_kwargs = dict(
        default=None,
        metavar="DIR",
        help="journal each completed cell to DIR; re-running the same "
        "experiment resumes from the journal with bit-identical output",
    )
    trace_kwargs = dict(
        default=None,
        metavar="PATH",
        help="write schema-versioned JSONL trace records (spans/events for "
        "engine rounds, kernel batches, sweep cells, caches) to PATH; "
        "draws no randomness, so seeded output is unchanged",
    )
    metrics_out_kwargs = dict(
        default=None,
        metavar="PATH",
        help="write the aggregated metrics registry (counters, gauges, "
        "histograms, timers — worker processes included) to PATH as JSON",
    )
    executor_kwargs = dict(
        choices=["auto", "inline", "process", "thread"],
        default="auto",
        help="dispatch backend for sweep cells: 'auto' (default; inline at "
        "--jobs 1, a process pool otherwise), 'inline' (this process), "
        "'process' (ProcessPoolExecutor with deadline enforcement and "
        "crash recovery), or 'thread' (ThreadPoolExecutor); results are "
        "bit-identical on every backend",
    )
    metrics_port_kwargs = dict(
        type=int,
        default=None,
        metavar="PORT",
        help="serve live OpenMetrics at http://127.0.0.1:PORT/metrics and "
        "sweep progress JSON at /progress while the command runs (0 = "
        "pick a free port, printed to stderr); implies metrics collection",
    )
    coordinate_kwargs = dict(
        action="store_true",
        help="partition the grid with other dispatchers sharing the same "
        "--checkpoint-dir: cells are leased before execution, peer results "
        "adopted, and expired leases stolen (requires --checkpoint-dir)",
    )
    lease_ttl_kwargs = dict(
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds before a --coordinate lease from a dead dispatcher "
        "may be stolen (default 300); must exceed the worst-case wall "
        "time of one cell",
    )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    run_parser.add_argument(
        "--fast", action="store_true", help="shrink sizes for a quick look"
    )
    run_parser.add_argument("--backend", **backend_kwargs)
    run_parser.add_argument("--jobs", **jobs_kwargs)
    run_parser.add_argument("--executor", **executor_kwargs)
    run_parser.add_argument("--on-error", **on_error_kwargs)
    run_parser.add_argument("--cell-timeout", **cell_timeout_kwargs)
    run_parser.add_argument("--checkpoint-dir", **checkpoint_kwargs)
    run_parser.add_argument("--coordinate", **coordinate_kwargs)
    run_parser.add_argument("--lease-ttl", **lease_ttl_kwargs)
    run_parser.add_argument("--metrics-port", **metrics_port_kwargs)
    run_parser.add_argument(
        "--artifacts-dir",
        default=None,
        metavar="DIR",
        help="also archive <name>.txt and the versioned <name>.json to DIR "
        "(plus <name>.metrics.json when telemetry is on)",
    )
    run_parser.add_argument("--trace", **trace_kwargs)
    run_parser.add_argument("--metrics-out", **metrics_out_kwargs)
    run_parser.set_defaults(func=_cmd_run)

    simulate_parser = sub.add_parser("simulate", help="run a custom S&F deployment")
    simulate_parser.add_argument("--nodes", type=int, default=500)
    simulate_parser.add_argument("--view-size", type=int, default=40)
    simulate_parser.add_argument("--d-low", type=int, default=18)
    simulate_parser.add_argument("--loss", type=float, default=0.01)
    simulate_parser.add_argument("--rounds", type=float, default=300.0)
    simulate_parser.add_argument("--seed", type=int, default=0)
    simulate_parser.add_argument("--backend", **backend_kwargs)
    simulate_parser.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="N",
        help="apply workers for --backend sharded (default: one per CPU); "
        "ignored by other backends",
    )
    simulate_parser.add_argument("--trace", **trace_kwargs)
    simulate_parser.add_argument("--metrics-out", **metrics_out_kwargs)
    simulate_parser.set_defaults(func=_cmd_simulate)

    report_parser = sub.add_parser(
        "report", help="run experiments and archive text+JSON results"
    )
    report_parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (default: all)",
    )
    report_parser.add_argument("--output", default="report", help="output directory")
    report_parser.add_argument("--fast", action="store_true")
    report_parser.add_argument("--backend", **backend_kwargs)
    report_parser.add_argument("--jobs", **jobs_kwargs)
    report_parser.add_argument("--executor", **executor_kwargs)
    report_parser.add_argument("--on-error", **on_error_kwargs)
    report_parser.add_argument("--cell-timeout", **cell_timeout_kwargs)
    report_parser.add_argument("--checkpoint-dir", **checkpoint_kwargs)
    report_parser.add_argument("--coordinate", **coordinate_kwargs)
    report_parser.add_argument("--lease-ttl", **lease_ttl_kwargs)
    report_parser.add_argument("--metrics-port", **metrics_port_kwargs)
    report_parser.add_argument("--trace", **trace_kwargs)
    report_parser.add_argument("--metrics-out", **metrics_out_kwargs)
    report_parser.set_defaults(func=_cmd_report)

    cluster_parser = sub.add_parser(
        "cluster", help="boot a localhost UDP cluster (real sockets, real loss)"
    )
    cluster_parser.add_argument("--n", type=int, default=50, help="number of nodes")
    cluster_parser.add_argument("--view-size", type=int, default=8)
    cluster_parser.add_argument("--d-low", type=int, default=2)
    cluster_parser.add_argument(
        "--drop", type=float, default=0.05,
        help="receiver-side drop probability per datagram",
    )
    cluster_parser.add_argument(
        "--rate", type=float, default=40.0,
        help="per-node initiate actions per second",
    )
    cluster_parser.add_argument("--duration", type=float, default=3.0)
    cluster_parser.add_argument("--seed", type=int, default=None)
    cluster_parser.add_argument(
        "--kill-restart", type=int, default=0, metavar="K",
        help="kill K random nodes mid-run and rejoin them via the introducer",
    )
    cluster_parser.add_argument(
        "--kill-wave", type=int, default=0, metavar="K",
        help="kill K random nodes for good at the 1/3 mark (the "
        "failure-detection scenario: survivors must declare them FAILED)",
    )
    cluster_parser.add_argument(
        "--failure-detection", action="store_true",
        help="run the SWIM-style failure detector on every node, liveness "
        "gossip piggybacked on the S&F datagrams; the report then carries "
        "the detection verdict and a wrong verdict fails the run",
    )
    cluster_parser.add_argument(
        "--suspect-after", type=float, default=1.5, metavar="S",
        help="seconds without liveness evidence before a peer is SUSPECTED",
    )
    cluster_parser.add_argument(
        "--fail-after", type=float, default=0.75, metavar="S",
        help="seconds in SUSPECTED without refutation before FAILED",
    )
    cluster_parser.add_argument(
        "--partition-groups", type=int, default=1, metavar="G",
        help="with G > 1, partition the cluster into G groups for the "
        "middle third of the run, then heal",
    )
    cluster_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full report as JSON to PATH",
    )
    cluster_parser.add_argument("--trace", **trace_kwargs)
    cluster_parser.add_argument("--metrics-out", **metrics_out_kwargs)
    cluster_parser.set_defaults(func=_cmd_cluster)

    gc_parser = sub.add_parser(
        "checkpoint-gc",
        help="prune checkpoint entries the current code cannot resume from",
    )
    gc_parser.add_argument(
        "directory", help="checkpoint directory (--checkpoint-dir of past runs)"
    )
    gc_parser.add_argument(
        "--worker",
        action="append",
        default=None,
        metavar="TOKEN",
        help="worker token to KEEP (repeatable); entries recorded under any "
        "other token — or none — are pruned.  Tokens are module-qualified "
        "names, e.g. repro.experiments.registry._spec_worker",
    )
    gc_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be pruned without deleting anything",
    )
    gc_parser.set_defaults(func=_cmd_checkpoint_gc)

    size_parser = sub.add_parser("size", help="apply the paper's sizing rules")
    size_parser.add_argument("--target-degree", type=int, default=30)
    size_parser.add_argument("--delta", type=float, default=0.01)
    size_parser.add_argument("--loss", type=float, default=0.01)
    size_parser.add_argument("--epsilon", type=float, default=1e-30)
    size_parser.set_defaults(func=_cmd_size)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
