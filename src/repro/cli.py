"""Command-line interface: run experiments and simulations from the shell.

Usage::

    python -m repro list
    python -m repro run fig-6.1
    python -m repro run table-6.4 --fast
    python -m repro report --fast --output report/
    python -m repro simulate --nodes 500 --view-size 40 --d-low 18 \
        --loss 0.01 --rounds 300
    python -m repro size --target-degree 30 --delta 0.01 --loss 0.01

``run`` executes one of the paper's experiments (see DESIGN.md's index)
and prints the same rows/series the paper reports.  ``--fast`` shrinks
simulation sizes for a quick look.  ``simulate`` runs a custom S&F
deployment and summarizes its steady state; ``size`` applies the §6.3 and
§7.4 sizing rules.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.core.params import SFParams

# ----------------------------------------------------------------------
# Experiment registry
# ----------------------------------------------------------------------


def _fig_6_1(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import fig_6_1

    # Purely analytic (Markov-chain) experiment: backend is accepted for
    # CLI uniformity but no simulation kernel is involved.
    return fig_6_1.run(dm=30 if fast else 90)


def _fig_6_2(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import fig_6_2

    return fig_6_2.run()


def _table_6_3(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import table_6_3

    return table_6_3.run(d_hats=(30,) if fast else (10, 20, 30, 40, 50))


def _fig_6_3(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import fig_6_3

    if fast:
        return fig_6_3.run(simulate=False, jobs=jobs, runner=runner)
    return fig_6_3.run(
        simulate=True,
        simulate_n=300,
        simulate_rounds=(400.0, 150.0),
        backend=backend,
        jobs=jobs,
        runner=runner,
    )


def _fig_6_4(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import fig_6_4

    if fast:
        return fig_6_4.run(max_round=200, step=50, jobs=jobs, runner=runner)
    return fig_6_4.run(
        simulate=True, simulate_n=300, warmup_rounds=200, backend=backend,
        jobs=jobs, runner=runner,
    )


def _cor_6_14(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import join_integration

    if fast:
        return join_integration.run(
            n=200, joiners=4, warmup_rounds=150, backend=backend
        )
    return join_integration.run(n=400, joiners=10, warmup_rounds=300, backend=backend)


def _lemma_6_6(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import dup_del_balance

    if fast:
        return dup_del_balance.run(
            losses=(0.0, 0.05),
            n=200,
            warmup_rounds=250,
            measure_rounds=100,
            backend=backend,
        )
    return dup_del_balance.run(
        n=300, warmup_rounds=400, measure_rounds=250, backend=backend
    )


def _lemma_7_5(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import lemma_7_5

    class _Bundle:
        def format(self) -> str:
            return "\n".join(
                [
                    lemma_7_5.run_lossless_simple().format(),
                    lemma_7_5.run_lossless_multiedge().format(),
                    lemma_7_5.run_lossy(0.3).format(),
                ]
            )

    return _Bundle()


def _lemma_7_6(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import uniformity_exp

    class _Bundle:
        def format(self) -> str:
            exact = uniformity_exp.run_exact(loss_rate=0.2)
            empirical = uniformity_exp.run_empirical(
                replications=3 if fast else 6, backend=backend, jobs=jobs,
                runner=runner,
            )
            return exact.format() + "\n" + empirical.format()

    return _Bundle()


def _lemma_7_9(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import independence_exp

    if fast:
        return independence_exp.run(
            losses=(0.0, 0.05),
            n=300,
            warmup_rounds=200,
            measure_rounds=60,
            backend=backend,
            jobs=jobs,
            runner=runner,
        )
    return independence_exp.run(
        n=600, warmup_rounds=300, measure_rounds=100, backend=backend,
        jobs=jobs, runner=runner,
    )


def _lemma_7_15(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import temporal_exp

    class _Bundle:
        def format(self) -> str:
            bounds = temporal_exp.run_bounds()
            decay = temporal_exp.run_decay(
                n=150 if fast else 300,
                max_rounds=120 if fast else 200,
                sample_every=20 if fast else 10,
                backend=backend,
            )
            return bounds.format() + "\n\n" + decay.format()

    return _Bundle()


def _connectivity(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import connectivity_exp

    return connectivity_exp.run(simulate=not fast, simulate_n=300, backend=backend)


def _load_balance(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import load_balance

    rounds = 150 if fast else 400
    return load_balance.run(n=200 if fast else 300, rounds=rounds, sample_every=50)


def _baselines(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import baselines

    return baselines.run(
        n=200 if fast else 300, rounds=120 if fast else 200, sample_every=40
    )


def _random_walks(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import random_walk_exp

    return random_walk_exp.run(attempts=800 if fast else 2000)


def _ablation(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import ablation_variants

    if fast:
        return ablation_variants.run(n=150, warmup_rounds=120, measure_rounds=80)
    return ablation_variants.run(n=300)


def _loss_sweep(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import loss_sweep

    if fast:
        return loss_sweep.run(losses=(0.0, 0.01, 0.05, 0.1), jobs=jobs, runner=runner)
    return loss_sweep.run(jobs=jobs, runner=runner)


def _parameter_sweep(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import parameter_sweep

    if fast:
        return parameter_sweep.run(
            d_lows=(10, 18), view_sizes=(40,), jobs=jobs, runner=runner
        )
    return parameter_sweep.run(jobs=jobs, runner=runner)


def _partition(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import partition_recovery

    if fast:
        return partition_recovery.run(
            n=100, partition_lengths=(20, 300), warmup_rounds=80
        )
    return partition_recovery.run()


def _samplers(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import sampler_exp

    if fast:
        return sampler_exp.run(n=100, epochs=5, rounds_per_epoch=20)
    return sampler_exp.run()


def _mixing(fast: bool, backend: str = "reference", jobs: int = 1, runner=None):
    from repro.experiments import mixing_exp

    return mixing_exp.run(epsilon=0.1 if fast else 0.05)


EXPERIMENTS: Dict[str, Callable[..., object]] = {
    "fig-6.1": _fig_6_1,
    "fig-6.2": _fig_6_2,
    "table-6.3": _table_6_3,
    "fig-6.3": _fig_6_3,
    "table-6.4": _fig_6_3,  # the §6.4 table is Fig 6.3's moment summary
    "fig-6.4": _fig_6_4,
    "cor-6.14": _cor_6_14,
    "lemma-6.6": _lemma_6_6,
    "lemma-7.5": _lemma_7_5,
    "lemma-7.6": _lemma_7_6,
    "lemma-7.9": _lemma_7_9,
    "lemma-7.15": _lemma_7_15,
    "connectivity": _connectivity,
    "load-balance": _load_balance,
    "baselines": _baselines,
    "random-walks": _random_walks,
    "ablation": _ablation,
    "loss-sweep": _loss_sweep,
    "parameter-sweep": _parameter_sweep,
    "partition-recovery": _partition,
    "samplers": _samplers,
    "mixing-exact": _mixing,
}


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    print("Available experiments (see DESIGN.md for the paper mapping):")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    return 0


def _resolve_jobs(jobs: int) -> int:
    """``--jobs 0`` means "use the machine": one worker per CPU, capped."""
    if jobs > 0:
        return jobs
    from repro.runner import default_jobs

    return default_jobs()


def _make_runner(args: argparse.Namespace):
    """A :class:`SweepRunner` configured from the fault-tolerance flags."""
    from repro.runner import CheckpointStore, SweepRunner

    checkpoint = None
    if args.checkpoint_dir:
        checkpoint = CheckpointStore(args.checkpoint_dir)
    return SweepRunner(
        jobs=_resolve_jobs(args.jobs),
        on_error=args.on_error,
        cell_timeout=args.cell_timeout,
        checkpoint=checkpoint,
    )


def _print_failures(sweep_runner) -> None:
    """Summarize cells skipped under ``--on-error skip`` (to stderr)."""
    for failure in sweep_runner.last_failures:
        print(
            f"WARNING: skipped point={failure.cell.point!r} "
            f"replication={failure.cell.replication} after "
            f"{failure.attempts} attempt(s): {failure.errors[-1]}",
            file=sys.stderr,
        )


def _cmd_run(args: argparse.Namespace) -> int:
    runner = EXPERIMENTS.get(args.experiment)
    if runner is None:
        print(
            f"unknown experiment {args.experiment!r}; try 'python -m repro list'",
            file=sys.stderr,
        )
        return 2
    sweep_runner = _make_runner(args)
    result = runner(
        args.fast,
        backend=args.backend,
        jobs=_resolve_jobs(args.jobs),
        runner=sweep_runner,
    )
    print(result.format())
    _print_failures(sweep_runner)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.common import build_sf_system
    from repro.metrics.degrees import degree_summary
    from repro.metrics.graph_stats import graph_statistics

    params = SFParams(view_size=args.view_size, d_low=args.d_low)
    boot = min(args.view_size - 2, max(args.d_low + 2, (3 * args.view_size // 4) & ~1))
    if boot >= args.nodes:
        print("need more nodes than the bootstrap outdegree", file=sys.stderr)
        return 2
    protocol, engine = build_sf_system(
        args.nodes,
        params,
        loss_rate=args.loss,
        seed=args.seed,
        backend=args.backend,
    )
    engine.run_rounds(args.rounds)
    protocol.check_invariant()

    summary = degree_summary(protocol)
    stats = graph_statistics(
        protocol.export_graph(), compute_diameter=args.nodes <= 2000
    )
    print(f"n={args.nodes} s={args.view_size} dL={args.d_low} "
          f"loss={args.loss} rounds={args.rounds}")
    print(f"outdegree {summary.outdegree_mean:.1f} ± {summary.outdegree_std:.1f}, "
          f"indegree {summary.indegree_mean:.1f} ± {summary.indegree_std:.1f}")
    print(f"dup {protocol.stats.duplication_probability():.4f}, "
          f"del {protocol.stats.deletion_probability():.4f}, "
          f"dependent {protocol.dependent_fraction():.4f}")
    print(f"connected={stats.weakly_connected} "
          f"diameter={stats.undirected_diameter} "
          f"self-edges={stats.self_edges}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Run a set of experiments, archiving text and JSON per experiment."""
    from pathlib import Path

    from repro.util.serialization import dump_result

    names = args.experiments or sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    output_dir = Path(args.output)
    output_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        print(f"== {name} ==")
        sweep_runner = _make_runner(args)
        result = EXPERIMENTS[name](
            args.fast,
            backend=args.backend,
            jobs=_resolve_jobs(args.jobs),
            runner=sweep_runner,
        )
        text = result.format()
        print(text)
        _print_failures(sweep_runner)
        print()
        slug = name.replace(".", "_")
        (output_dir / f"{slug}.txt").write_text(text + "\n")
        try:
            dump_result(result, output_dir / f"{slug}.json")
        except TypeError:
            pass  # wrapper bundles without dataclass payloads: text only
    print(f"report written to {output_dir}/")
    return 0


def _cmd_size(args: argparse.Namespace) -> int:
    from repro.analysis.connectivity import min_d_low_for_connectivity
    from repro.core.thresholds import select_thresholds

    selection = select_thresholds(args.target_degree, args.delta)
    print(f"§6.3 rule: d̂={args.target_degree}, δ={args.delta} → "
          f"dL={selection.d_low}, s={selection.view_size} "
          f"(tails {selection.low_tail:.4f}/{selection.high_tail:.4f})")
    required = min_d_low_for_connectivity(args.loss, args.delta, args.epsilon)
    print(f"§7.4 connectivity at l={args.loss}, ε={args.epsilon:.0e}: dL ≥ {required}")
    d_low = max(selection.d_low, required)
    view_size = max(selection.view_size, d_low + 6)
    print(f"recommended: dL={d_low}, s={view_size}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'Correctness of gossip-based "
        "membership under message loss' (Gurevich & Keidar, PODC 2009).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    backend_kwargs = dict(
        choices=["reference", "array", "reference-kernel"],
        default="reference",
        help="simulation backend: 'reference' (legacy object-per-node), "
        "'array' (vectorized numpy kernel), or 'reference-kernel' "
        "(object-per-node under the batched kernel discipline)",
    )
    jobs_kwargs = dict(
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sweep experiments (default 1 = serial; "
        "0 = one per CPU, capped at 8); results are identical at any value",
    )
    on_error_kwargs = dict(
        choices=["raise", "retry", "skip"],
        default="raise",
        help="sweep failure policy: 'raise' fails fast (default); 'retry' "
        "retries each failing cell with exponential backoff, then fails; "
        "'skip' retries likewise, then drops the cell and keeps the rest",
    )
    cell_timeout_kwargs = dict(
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget for sweep experiments; an overdue "
        "cell counts as failed (pool path only, i.e. --jobs > 1)",
    )
    checkpoint_kwargs = dict(
        default=None,
        metavar="DIR",
        help="journal each completed sweep cell to DIR; re-running the same "
        "sweep resumes from the journal with bit-identical output",
    )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    run_parser.add_argument(
        "--fast", action="store_true", help="shrink sizes for a quick look"
    )
    run_parser.add_argument("--backend", **backend_kwargs)
    run_parser.add_argument("--jobs", **jobs_kwargs)
    run_parser.add_argument("--on-error", **on_error_kwargs)
    run_parser.add_argument("--cell-timeout", **cell_timeout_kwargs)
    run_parser.add_argument("--checkpoint-dir", **checkpoint_kwargs)
    run_parser.set_defaults(func=_cmd_run)

    simulate_parser = sub.add_parser("simulate", help="run a custom S&F deployment")
    simulate_parser.add_argument("--nodes", type=int, default=500)
    simulate_parser.add_argument("--view-size", type=int, default=40)
    simulate_parser.add_argument("--d-low", type=int, default=18)
    simulate_parser.add_argument("--loss", type=float, default=0.01)
    simulate_parser.add_argument("--rounds", type=float, default=300.0)
    simulate_parser.add_argument("--seed", type=int, default=0)
    simulate_parser.add_argument("--backend", **backend_kwargs)
    simulate_parser.set_defaults(func=_cmd_simulate)

    report_parser = sub.add_parser(
        "report", help="run experiments and archive text+JSON results"
    )
    report_parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (default: all)",
    )
    report_parser.add_argument("--output", default="report", help="output directory")
    report_parser.add_argument("--fast", action="store_true")
    report_parser.add_argument("--backend", **backend_kwargs)
    report_parser.add_argument("--jobs", **jobs_kwargs)
    report_parser.add_argument("--on-error", **on_error_kwargs)
    report_parser.add_argument("--cell-timeout", **cell_timeout_kwargs)
    report_parser.add_argument("--checkpoint-dir", **checkpoint_kwargs)
    report_parser.set_defaults(func=_cmd_report)

    size_parser = sub.add_parser("size", help="apply the paper's sizing rules")
    size_parser.add_argument("--target-degree", type=int, default=30)
    size_parser.add_argument("--delta", type=float, default=0.01)
    size_parser.add_argument("--loss", type=float, default=0.01)
    size_parser.add_argument("--epsilon", type=float, default=1e-30)
    size_parser.set_defaults(func=_cmd_size)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
